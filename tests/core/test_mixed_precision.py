"""Memory-driven mixed-precision search (Algorithms 1 and 2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.memory_model import MemoryModel
from repro.core.mixed_precision import (
    MemoryInfeasibleError,
    _cut_bits_rule,
    cut_activation_bits,
    cut_weight_bits,
    search_mixed_precision,
)
from repro.core.policy import QuantMethod, QuantPolicy
from repro.models.model_zoo import all_mobilenet_configs, mobilenet_v1_spec

KB = 1024
MB = 1024 * 1024


class TestCutBitsRule:
    def test_cuts_higher_precision_tensor(self):
        assert _cut_bits_rule(mem_keep=100, q_keep=4, mem_cut=100, q_cut=8, q_min=2)

    def test_cuts_equal_precision_larger_tensor(self):
        assert _cut_bits_rule(mem_keep=100, q_keep=8, mem_cut=200, q_cut=8, q_min=2)

    def test_never_cuts_below_minimum(self):
        assert not _cut_bits_rule(mem_keep=100, q_keep=8, mem_cut=1000, q_cut=2, q_min=2)

    def test_keeps_smaller_equal_precision_tensor(self):
        assert not _cut_bits_rule(mem_keep=200, q_keep=8, mem_cut=100, q_cut=8, q_min=2)

    def test_keeps_lower_precision_tensor(self):
        assert not _cut_bits_rule(mem_keep=100, q_keep=8, mem_cut=200, q_cut=4, q_min=2)


class TestCutActivationBits:
    def test_no_cuts_when_budget_is_large(self):
        spec = mobilenet_v1_spec(128, 0.25)
        policy = QuantPolicy.uniform(spec, bits=8)
        cut_activation_bits(spec, policy, rw_budget=512 * KB)
        assert all(lp.q_out == 8 for lp in policy.layers)

    def test_constraint_satisfied_after_cuts(self):
        spec = mobilenet_v1_spec(224, 1.0)
        policy = QuantPolicy.uniform(spec, bits=8)
        cut_activation_bits(spec, policy, rw_budget=512 * KB)
        model = MemoryModel(spec)
        assert model.rw_peak_bytes(policy) <= 512 * KB

    def test_chain_consistency_preserved(self):
        spec = mobilenet_v1_spec(224, 1.0)
        policy = QuantPolicy.uniform(spec, bits=8)
        cut_activation_bits(spec, policy, rw_budget=512 * KB)
        policy.validate()

    def test_input_precision_never_touched(self):
        spec = mobilenet_v1_spec(224, 1.0)
        policy = QuantPolicy.uniform(spec, bits=8)
        cut_activation_bits(spec, policy, rw_budget=320 * KB)
        assert policy[0].q_in == 8

    def test_paper_anchor_224_075_early_cuts(self):
        """The paper reports Q1y, Q2y = 4 for the most accurate 2 MB model
        (224_0.75): the first depthwise/pointwise outputs must be cut."""
        spec = mobilenet_v1_spec(224, 0.75)
        policy = QuantPolicy.uniform(spec, bits=8)
        cut_activation_bits(spec, policy, rw_budget=512 * KB)
        assert policy[1].q_out < 8
        assert policy[2].q_out < 8
        # Later layers with small activations are untouched.
        assert policy[20].q_out == 8

    def test_smaller_budget_cuts_more(self):
        spec = mobilenet_v1_spec(224, 1.0)
        p_large = QuantPolicy.uniform(spec, bits=8)
        p_small = QuantPolicy.uniform(spec, bits=8)
        cut_activation_bits(spec, p_large, rw_budget=512 * KB)
        cut_activation_bits(spec, p_small, rw_budget=300 * KB)
        assert sum(p_small.activation_bits()) < sum(p_large.activation_bits())

    def test_infeasible_budget_raises(self):
        spec = mobilenet_v1_spec(224, 1.0)
        policy = QuantPolicy.uniform(spec, bits=8)
        with pytest.raises(MemoryInfeasibleError):
            cut_activation_bits(spec, policy, rw_budget=10 * KB)

    def test_q_min_respected(self):
        spec = mobilenet_v1_spec(224, 1.0)
        policy = QuantPolicy.uniform(spec, bits=8)
        cut_activation_bits(spec, policy, rw_budget=700 * KB, q_min=4)
        assert min(policy.activation_bits()) >= 4
        assert min(lp.q_out for lp in policy.layers) == 4  # some layer was cut

    def test_invalid_q_min(self):
        spec = mobilenet_v1_spec(128, 0.25)
        policy = QuantPolicy.uniform(spec, bits=8)
        with pytest.raises(ValueError):
            cut_activation_bits(spec, policy, rw_budget=1 * MB, q_min=3)


class TestCutWeightBits:
    def test_no_cuts_when_budget_is_large(self):
        spec = mobilenet_v1_spec(128, 0.25)
        policy = QuantPolicy.uniform(spec, bits=8)
        cut_weight_bits(spec, policy, ro_budget=2 * MB)
        assert all(lp.q_w == 8 for lp in policy.layers)

    def test_constraint_satisfied_after_cuts(self):
        spec = mobilenet_v1_spec(224, 1.0)
        policy = QuantPolicy.uniform(spec, bits=8)
        cut_weight_bits(spec, policy, ro_budget=2 * MB)
        assert MemoryModel(spec).ro_bytes(policy) <= 2 * MB

    def test_cuts_target_heaviest_layers_first(self):
        """The largest layers (last pointwise convolutions, classifier) are
        the ones that lose precision (paper §6 / Figure 3)."""
        spec = mobilenet_v1_spec(224, 0.75)
        policy = QuantPolicy.uniform(spec, bits=8)
        cut_weight_bits(spec, policy, ro_budget=2 * MB)
        cut_indices = [i for i, lp in enumerate(policy.layers) if lp.q_w < 8]
        assert cut_indices, "some layer must have been cut"
        # Every cut layer is among the heavier half of the network.
        weights = [l.weight_count for l in spec.layers]
        median = sorted(weights)[len(weights) // 2]
        assert all(weights[i] >= median for i in cut_indices)

    def test_small_first_layers_never_cut_at_2mb(self):
        spec = mobilenet_v1_spec(224, 1.0)
        policy = QuantPolicy.uniform(spec, bits=8)
        cut_weight_bits(spec, policy, ro_budget=2 * MB)
        assert policy[0].q_w == 8  # first conv has only 864 weights

    def test_delta_margin_prefers_smaller_index(self):
        """With a large delta the earliest of the near-maximal layers is cut."""
        spec = mobilenet_v1_spec(224, 1.0)
        p_small_delta = QuantPolicy.uniform(spec, bits=8)
        p_large_delta = QuantPolicy.uniform(spec, bits=8)
        cut_weight_bits(spec, p_small_delta, ro_budget=3 * MB, delta=0.0)
        cut_weight_bits(spec, p_large_delta, ro_budget=3 * MB, delta=0.5)
        first_cut_small = min(i for i, lp in enumerate(p_small_delta.layers) if lp.q_w < 8)
        first_cut_large = min(i for i, lp in enumerate(p_large_delta.layers) if lp.q_w < 8)
        assert first_cut_large <= first_cut_small

    def test_infeasible_budget_raises(self):
        spec = mobilenet_v1_spec(224, 1.0)
        policy = QuantPolicy.uniform(spec, bits=8)
        with pytest.raises(MemoryInfeasibleError):
            cut_weight_bits(spec, policy, ro_budget=100 * KB)

    def test_invalid_delta(self):
        spec = mobilenet_v1_spec(128, 0.25)
        policy = QuantPolicy.uniform(spec, bits=8)
        with pytest.raises(ValueError):
            cut_weight_bits(spec, policy, ro_budget=1 * MB, delta=1.5)

    def test_q_min_respected(self):
        spec = mobilenet_v1_spec(224, 1.0)
        policy = QuantPolicy.uniform(spec, bits=8)
        cut_weight_bits(spec, policy, ro_budget=int(2.5 * MB), q_min=4)
        assert min(policy.weight_bits()) >= 4
        assert any(lp.q_w == 4 for lp in policy.layers)


class TestSearchMixedPrecision:
    def test_stm32h7_budgets_all_configs_feasible(self):
        """Every MobileNetV1 configuration fits the STM32H7 (2 MB / 512 kB)."""
        for spec in all_mobilenet_configs():
            policy = search_mixed_precision(spec, 2 * MB, 512 * KB)
            model = MemoryModel(spec)
            assert policy.feasible
            assert model.ro_bytes(policy) <= 2 * MB
            assert model.rw_peak_bytes(policy) <= 512 * KB
            policy.validate()

    def test_small_models_have_no_cuts_at_2mb(self):
        """Paper §6: width 0.25 and 0.5 configurations (except 224_0.5 on
        the RO side) need no precision cuts under the 2 MB / 512 kB budget."""
        for label in ["128_0.25", "160_0.5", "192_0.25"]:
            res, wm = label.split("_")
            spec = mobilenet_v1_spec(int(res), float(wm))
            policy = search_mixed_precision(spec, 2 * MB, 512 * KB)
            assert policy.is_uniform(8), f"{label} should be homogeneous 8 bit"

    def test_large_models_need_cuts_at_2mb(self):
        for label in ["224_1.0", "192_1.0", "224_0.75"]:
            res, wm = label.split("_")
            spec = mobilenet_v1_spec(int(res), float(wm))
            policy = search_mixed_precision(spec, 2 * MB, 512 * KB)
            assert not policy.is_uniform(8), f"{label} must have some cut"

    def test_method_affects_ro_via_aux_params(self):
        """Threshold tables grow as c_O * 2^Q: with 8-bit activations the
        static parameters alone exceed the 2 MB budget for 224_1.0, which
        is exactly why the paper's Table 1 flags the exponential growth."""
        spec = mobilenet_v1_spec(224, 1.0)
        pc = search_mixed_precision(spec, 2 * MB, 512 * KB, method=QuantMethod.PC_ICN)
        thr = search_mixed_precision(
            spec, 2 * MB, 512 * KB, method=QuantMethod.PC_THRESHOLDS, strict=False
        )
        assert pc.feasible
        # Thresholds carry more static parameters, forcing deeper cuts (and
        # here, outright infeasibility at Q_out = 8).
        assert sum(thr.weight_bits()) <= sum(pc.weight_bits())
        assert not thr.feasible

    def test_strict_false_returns_best_effort(self):
        spec = mobilenet_v1_spec(224, 1.0)
        policy = search_mixed_precision(spec, 100 * KB, 10 * KB, strict=False)
        assert not policy.feasible

    def test_strict_true_raises(self):
        spec = mobilenet_v1_spec(224, 1.0)
        with pytest.raises(MemoryInfeasibleError):
            search_mixed_precision(spec, 100 * KB, 10 * KB, strict=True)

    @settings(max_examples=15, deadline=None)
    @given(
        ro_mb=st.floats(min_value=1.2, max_value=8.0),
        rw_kb=st.integers(min_value=330, max_value=2048),
    )
    def test_property_search_meets_budgets(self, ro_mb, rw_kb):
        """For any feasible budget pair, the returned policy satisfies both
        Eq. 6 and Eq. 7 and keeps the activation chain consistent."""
        spec = mobilenet_v1_spec(224, 1.0)
        ro = int(ro_mb * MB)
        rw = rw_kb * KB
        policy = search_mixed_precision(spec, ro, rw, strict=False)
        if policy.feasible:
            model = MemoryModel(spec)
            assert model.ro_bytes(policy) <= ro
            assert model.rw_peak_bytes(policy) <= rw
            policy.validate()

    @settings(max_examples=10, deadline=None)
    @given(rw_kb=st.integers(min_value=330, max_value=1024))
    def test_property_tighter_rw_budget_never_increases_bits(self, rw_kb):
        spec = mobilenet_v1_spec(224, 1.0)
        loose = search_mixed_precision(spec, 4 * MB, 1024 * KB, strict=False)
        tight = search_mixed_precision(spec, 4 * MB, rw_kb * KB, strict=False)
        assert sum(tight.activation_bits()) <= sum(loose.activation_bits())
