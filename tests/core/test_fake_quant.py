"""Fake-quantization modules: PACT activation quantizer, weight quantizers
and the fake-quantized conv/bn block used during QAT."""

import numpy as np
import pytest

from repro.core.fake_quant import (
    PACTFakeQuant,
    QuantConvBNBlock,
    QuantLinear,
    WeightFakeQuant,
)
from repro import nn
from repro.models.mobilenet_v1 import ConvBNBlock


class TestPACTFakeQuant:
    def test_output_on_grid(self, rng):
        q = PACTFakeQuant(bits=4, alpha_init=4.0)
        x = rng.uniform(-2, 6, size=(2, 3, 5, 5))
        y = q(x)
        codes = y / q.scale
        assert np.allclose(codes, np.round(codes))
        assert y.min() >= 0 and y.max() <= 4.0

    def test_negative_inputs_clipped_to_zero(self, rng):
        q = PACTFakeQuant(bits=8, alpha_init=6.0)
        y = q(-np.abs(rng.normal(size=100)))
        assert np.allclose(y, 0.0)

    def test_scale_definition(self):
        q = PACTFakeQuant(bits=4, alpha_init=3.0)
        assert np.isclose(q.scale, 3.0 / 15)
        assert q.zero_point == 0

    def test_floor_rounding(self):
        q = PACTFakeQuant(bits=8, alpha_init=255.0)  # scale exactly 1
        y = q(np.array([1.99, 2.0, 2.01]))
        assert np.allclose(y, [1.0, 2.0, 2.0])

    def test_ste_gradient_masks_clipped_inputs(self):
        q = PACTFakeQuant(bits=8, alpha_init=2.0)
        x = np.array([-1.0, 1.0, 3.0])
        q(x)
        gx = q.backward(np.ones(3))
        assert np.allclose(gx, [0.0, 1.0, 0.0])

    def test_alpha_gradient_counts_clipped_inputs(self):
        q = PACTFakeQuant(bits=8, alpha_init=2.0)
        x = np.array([-1.0, 1.0, 3.0, 5.0])
        q(x)
        q.backward(np.ones(4))
        assert np.isclose(q.alpha.grad[0], 2.0)

    def test_alpha_not_learned_when_disabled(self):
        q = PACTFakeQuant(bits=8, alpha_init=2.0, learn_alpha=False)
        q(np.array([5.0]))
        q.backward(np.ones(1))
        assert np.allclose(q.alpha.grad, 0.0)

    def test_set_bits(self):
        q = PACTFakeQuant(bits=8)
        q.set_bits(2)
        assert q.bits == 2 and q.quant_spec().levels == 4

    def test_quantize_integer_codes(self, rng):
        q = PACTFakeQuant(bits=4, alpha_init=4.0)
        x = rng.uniform(0, 4, size=50)
        codes = q.quantize_integer(x)
        assert codes.min() >= 0 and codes.max() <= 15
        assert np.allclose(codes * q.scale, q(x))

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            PACTFakeQuant(bits=8, alpha_init=0.0)


class TestWeightFakeQuant:
    def test_minmax_pl_range_covers_tensor(self, rng):
        wq = WeightFakeQuant(bits=8, scheme="minmax_pl")
        w = rng.normal(size=(8, 4, 3, 3))
        fq = wq.fake_quantize(w)
        assert np.max(np.abs(fq - w)) < (w.max() - w.min()) / 255 + 1e-9

    def test_minmax_pc_lower_error_than_pl(self, rng):
        """Per-channel quantization approximates heterogeneous channels better."""
        w = rng.normal(size=(16, 8, 3, 3)) * rng.uniform(0.05, 2.0, size=(16, 1, 1, 1))
        err_pl = np.mean((WeightFakeQuant(4, "minmax_pl").fake_quantize(w) - w) ** 2)
        err_pc = np.mean((WeightFakeQuant(4, "minmax_pc").fake_quantize(w) - w) ** 2)
        assert err_pc < err_pl

    def test_pact_pl_symmetric(self, rng):
        wq = WeightFakeQuant(bits=8, scheme="pact_pl")
        w = rng.normal(size=(4, 4, 3, 3))
        a, b = wq.ranges(w)
        assert np.isclose(a, -b)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            WeightFakeQuant(bits=8, scheme="log2")

    def test_quantize_integer_per_channel_shapes(self, rng):
        wq = WeightFakeQuant(bits=4, scheme="minmax_pc")
        w = rng.normal(size=(6, 3, 3, 3))
        codes, scale, zp = wq.quantize_integer(w)
        assert codes.shape == w.shape
        assert scale.shape == (6,) and zp.shape == (6,)
        assert codes.min() >= 0 and codes.max() <= 15

    def test_quantize_integer_per_layer_scalars(self, rng):
        wq = WeightFakeQuant(bits=4, scheme="minmax_pl")
        codes, scale, zp = wq.quantize_integer(rng.normal(size=(6, 3, 3, 3)))
        assert scale.shape == (1,) and zp.shape == (1,)

    def test_dequantized_integer_matches_fake_quantize(self, rng):
        wq = WeightFakeQuant(bits=4, scheme="minmax_pc")
        w = rng.normal(size=(5, 2, 3, 3))
        codes, scale, zp = wq.quantize_integer(w)
        deq = (codes - zp.reshape(-1, 1, 1, 1)) * scale.reshape(-1, 1, 1, 1)
        assert np.allclose(deq, wq.fake_quantize(w))

    def test_per_channel_flag(self):
        assert WeightFakeQuant(8, "minmax_pc").per_channel
        assert not WeightFakeQuant(8, "minmax_pl").per_channel
        assert not WeightFakeQuant(8, "pact_pl").per_channel


def _make_block(rng, channels=4):
    conv = nn.Conv2d(3, channels, 3, padding=1, bias=False, rng=rng)
    return ConvBNBlock(conv, channels)


class TestQuantConvBNBlock:
    def test_forward_preserves_master_weights(self, rng):
        block = _make_block(rng)
        w_before = block.conv.weight.data.copy()
        qblock = QuantConvBNBlock(block, weight_bits=4, act_bits=4)
        qblock(rng.normal(size=(2, 3, 8, 8)))
        assert np.allclose(qblock.conv.weight.data, w_before)

    def test_output_is_quantized(self, rng):
        block = _make_block(rng)
        qblock = QuantConvBNBlock(block, weight_bits=8, act_bits=4, act_alpha_init=4.0)
        y = qblock(rng.normal(size=(2, 3, 8, 8)))
        codes = y / qblock.act_quant.scale
        assert np.allclose(codes, np.round(codes), atol=1e-9)

    def test_backward_accumulates_conv_gradients(self, rng):
        block = _make_block(rng)
        qblock = QuantConvBNBlock(block, weight_bits=4, act_bits=8)
        y = qblock(rng.normal(size=(2, 3, 8, 8)))
        qblock.backward(np.ones_like(y))
        assert np.any(qblock.conv.weight.grad != 0)

    def test_folding_inactive_until_enabled(self, rng):
        block = _make_block(rng)
        qblock = QuantConvBNBlock(block, weight_bits=8, act_bits=8, fold_bn=True)
        assert not qblock.folding_active
        qblock.enable_folding()
        assert qblock.folding_active

    def test_enable_folding_noop_without_fold_bn(self, rng):
        block = _make_block(rng)
        qblock = QuantConvBNBlock(block, weight_bits=8, act_bits=8, fold_bn=False)
        qblock.enable_folding()
        assert not qblock.folding_active

    def test_folded_forward_runs_and_restores_weights(self, rng):
        block = _make_block(rng)
        # Populate batch-norm running statistics first.
        for _ in range(3):
            block(rng.normal(size=(4, 3, 8, 8)))
        qblock = QuantConvBNBlock(block, weight_bits=4, act_bits=8, fold_bn=True)
        qblock.enable_folding()
        w_before = qblock.conv.weight.data.copy()
        y = qblock(rng.normal(size=(2, 3, 8, 8)))
        qblock.backward(np.ones_like(y))
        assert np.allclose(qblock.conv.weight.data, w_before)
        assert np.isfinite(qblock.conv.weight.grad).all()

    def test_set_bits(self, rng):
        qblock = QuantConvBNBlock(_make_block(rng), weight_bits=8, act_bits=8)
        qblock.set_bits(4, 2)
        assert qblock.weight_quant.bits == 4 and qblock.act_quant.bits == 2


class TestQuantLinear:
    def test_forward_and_weight_restoration(self, rng):
        lin = nn.Linear(10, 4, rng=rng)
        w_before = lin.weight.data.copy()
        qlin = QuantLinear(lin, weight_bits=4)
        y = qlin(rng.normal(size=(3, 10)))
        assert y.shape == (3, 4)
        assert np.allclose(qlin.linear.weight.data, w_before)

    def test_backward(self, rng):
        qlin = QuantLinear(nn.Linear(10, 4, rng=rng), weight_bits=4)
        y = qlin(rng.normal(size=(3, 10)))
        gx = qlin.backward(np.ones_like(y))
        assert gx.shape == (3, 10)
        assert np.any(qlin.linear.weight.grad != 0)

    def test_set_bits(self, rng):
        qlin = QuantLinear(nn.Linear(10, 4, rng=rng), weight_bits=8)
        qlin.set_bits(2)
        assert qlin.weight_quant.bits == 2
