"""Integer Channel-Normalization conversion (Eq. 3-5), the thresholds
baseline and the folded-batch-norm baseline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.icn import (
    compute_folded_params,
    compute_icn_params,
    compute_thresholds,
    decompose_fixed_point,
    folded_requantize,
    icn_requantize,
    mantissa_to_float,
    quantize_mantissa,
    quantize_multiplier,
    threshold_requantize,
)
from repro.core.quantizer import (
    QuantSpec,
    broadcast_channelwise,
    compute_affine_params,
    per_channel_minmax,
    quantize_affine,
)
from repro.inference.kernels import int_conv2d


# ----------------------------------------------------------------------
# Fixed-point decomposition
# ----------------------------------------------------------------------
class TestFixedPointDecomposition:
    def test_mantissa_range(self, rng):
        m = rng.uniform(-10, 10, size=100)
        m = m[m != 0]
        m0, n0 = decompose_fixed_point(m)
        assert np.all((np.abs(m0) >= 0.5) & (np.abs(m0) < 1.0))

    def test_reconstruction_exact(self, rng):
        m = rng.uniform(1e-6, 10, size=50)
        m0, n0 = decompose_fixed_point(m)
        assert np.allclose(m0 * np.exp2(n0.astype(float)), m)

    def test_zero_maps_to_zero(self):
        m0, n0 = decompose_fixed_point(np.array([0.0, 1.0]))
        assert m0[0] == 0 and n0[0] == 0

    def test_mantissa_quantization_error(self, rng):
        m = rng.uniform(0.5, 1.0, size=100)
        q = quantize_mantissa(m)
        back = mantissa_to_float(q)
        assert np.max(np.abs(back - m)) < 2 ** -30

    def test_quantize_multiplier_no_overflow(self):
        """Values rounding up to |m0| = 1.0 are renormalised."""
        m = np.array([1.0 - 2 ** -40, 0.5, -1.0 + 2 ** -40])
        m0, n0 = quantize_multiplier(m)
        assert np.all(np.abs(m0) <= 2 ** 31 - 1 + 1)  # strictly inside INT32 after renorm
        assert np.all(np.abs(m0) < 2 ** 31)

    @settings(max_examples=60, deadline=None)
    @given(st.floats(min_value=1e-8, max_value=1e4, allow_nan=False))
    def test_property_multiplier_roundtrip(self, m):
        m0, n0 = quantize_multiplier(np.array([m]))
        back = mantissa_to_float(m0) * np.exp2(n0.astype(float))
        assert abs(back[0] - m) <= m * 2 ** -29


# ----------------------------------------------------------------------
# Helpers shared by the equivalence tests
# ----------------------------------------------------------------------
def _random_quantized_layer(rng, c_in=4, c_out=6, k=3, n=2, h=8, per_channel=True,
                            out_bits=8, w_bits=8):
    """Random conv/bn/quant-act layer in both float and integer forms."""
    s_in = 1.0 / 63.0
    z_x = 0
    x_codes = rng.integers(0, 2 ** 8, size=(n, c_in, h, h))
    x_real = s_in * (x_codes - z_x)

    w_real = rng.normal(0, 0.4, size=(c_out, c_in, k, k))
    spec_w = QuantSpec(bits=w_bits, per_channel=per_channel)
    if per_channel:
        a, b = per_channel_minmax(w_real, axis=0)
        s_w, z_w = compute_affine_params(a, b, spec_w)
        w_codes = quantize_affine(
            np.clip(w_real, broadcast_channelwise(a, 4), broadcast_channelwise(b, 4)),
            broadcast_channelwise(s_w, 4), broadcast_channelwise(z_w, 4), spec_w,
        )
        w_deq = (w_codes - broadcast_channelwise(z_w, 4)) * broadcast_channelwise(s_w, 4)
    else:
        a, b = float(w_real.min()), float(w_real.max())
        s_w, z_w = compute_affine_params(a, b, spec_w)
        w_codes = quantize_affine(np.clip(w_real, a, b), s_w, z_w, spec_w)
        w_deq = (w_codes - z_w) * s_w
        s_w, z_w = float(s_w), int(z_w)

    gamma = rng.uniform(0.5, 1.5, size=c_out) * rng.choice([1.0, 1.0, 1.0, -1.0], size=c_out)
    beta = rng.normal(0, 0.3, size=c_out)
    mu = rng.normal(0, 0.2, size=c_out)
    sigma = rng.uniform(0.5, 2.0, size=c_out)
    alpha = rng.uniform(2.0, 8.0)
    s_out = alpha / (2 ** out_bits - 1)
    z_y = 0

    return {
        "s_in": s_in, "z_x": z_x, "x_codes": x_codes, "x_real": x_real,
        "w_codes": w_codes, "w_deq": w_deq, "s_w": s_w, "z_w": z_w,
        "gamma": gamma, "beta": beta, "mu": mu, "sigma": sigma,
        "s_out": s_out, "z_y": z_y, "out_bits": out_bits, "w_bits": w_bits,
        "per_channel": per_channel,
    }


def _float_reference_codes(layer):
    """Output codes of the fake-quantized transfer function (Eq. 3)."""
    from repro.nn.functional import conv2d_forward

    phi, _ = conv2d_forward(layer["x_real"], layer["w_deq"], None, 1, 1)
    y = (phi - layer["mu"].reshape(1, -1, 1, 1)) / layer["sigma"].reshape(1, -1, 1, 1)
    y = y * layer["gamma"].reshape(1, -1, 1, 1) + layer["beta"].reshape(1, -1, 1, 1)
    codes = np.floor(y / layer["s_out"]) + layer["z_y"]
    return np.clip(codes, 0, 2 ** layer["out_bits"] - 1).astype(np.int64)


def _icn_from_layer(layer):
    return compute_icn_params(
        layer["w_codes"], layer["s_w"], layer["z_w"], layer["s_in"], layer["z_x"],
        layer["s_out"], layer["z_y"], layer["out_bits"], layer["w_bits"],
        bn_gamma=layer["gamma"], bn_beta=layer["beta"], bn_mean=layer["mu"],
        bn_std=layer["sigma"], per_channel=layer["per_channel"],
    )


# ----------------------------------------------------------------------
# ICN equivalence with the fake-quantized graph
# ----------------------------------------------------------------------
class TestICNEquivalence:
    @pytest.mark.parametrize("per_channel", [True, False])
    @pytest.mark.parametrize("out_bits", [8, 4, 2])
    def test_integer_matches_float_reference(self, rng, per_channel, out_bits):
        """Eq. 5 reproduces Eq. 3 up to the Bq / M0 rounding (<= 1 code)."""
        layer = _random_quantized_layer(rng, per_channel=per_channel, out_bits=out_bits)
        ref = _float_reference_codes(layer)
        icn = _icn_from_layer(layer)
        phi = int_conv2d(layer["x_codes"], layer["w_codes"], layer["z_x"], layer["z_w"],
                         stride=1, padding=1, w_bits=layer["w_bits"])
        out = icn_requantize(phi, icn)
        diff = np.abs(out - ref)
        assert diff.max() <= 1
        assert (diff == 0).mean() > 0.98

    def test_low_bitwidth_weights(self, rng):
        layer = _random_quantized_layer(rng, per_channel=True, out_bits=4, w_bits=4)
        ref = _float_reference_codes(layer)
        icn = _icn_from_layer(layer)
        phi = int_conv2d(layer["x_codes"], layer["w_codes"], layer["z_x"], layer["z_w"],
                         stride=1, padding=1, w_bits=4)
        out = icn_requantize(phi, icn)
        assert np.abs(out - ref).max() <= 1

    def test_output_within_grid(self, rng):
        layer = _random_quantized_layer(rng, out_bits=4)
        icn = _icn_from_layer(layer)
        phi = int_conv2d(layer["x_codes"], layer["w_codes"], layer["z_x"], layer["z_w"],
                         stride=1, padding=1)
        out = icn_requantize(phi, icn)
        assert out.min() >= 0 and out.max() <= 15

    def test_all_integer_dtypes(self, rng):
        layer = _random_quantized_layer(rng)
        icn = _icn_from_layer(layer)
        assert icn.bq.dtype == np.int64
        assert icn.m0.dtype == np.int64
        assert np.all(np.abs(icn.m0) < 2 ** 31)
        assert np.all(np.abs(icn.bq) < 2 ** 31)

    def test_negative_gamma_supported(self, rng):
        """Channels with negative batch-norm gamma flip the multiplier sign."""
        layer = _random_quantized_layer(rng)
        layer["gamma"] = -np.abs(layer["gamma"])
        ref = _float_reference_codes(layer)
        icn = _icn_from_layer(layer)
        phi = int_conv2d(layer["x_codes"], layer["w_codes"], layer["z_x"], layer["z_w"],
                         stride=1, padding=1)
        out = icn_requantize(phi, icn)
        assert np.all(icn.m0 <= 0)
        assert np.abs(out - ref).max() <= 1

    def test_conv_bias_folded_into_bq(self, rng):
        layer = _random_quantized_layer(rng)
        bias = rng.normal(0, 0.5, size=layer["w_codes"].shape[0])
        icn_no_bias = _icn_from_layer(layer)
        icn_bias = compute_icn_params(
            layer["w_codes"], layer["s_w"], layer["z_w"], layer["s_in"], layer["z_x"],
            layer["s_out"], layer["z_y"], layer["out_bits"], layer["w_bits"],
            bn_gamma=layer["gamma"], bn_beta=layer["beta"], bn_mean=layer["mu"],
            bn_std=layer["sigma"], conv_bias=bias, per_channel=layer["per_channel"],
        )
        assert not np.array_equal(icn_no_bias.bq, icn_bias.bq)

    def test_invalid_sigma_rejected(self, rng):
        layer = _random_quantized_layer(rng)
        layer["sigma"][0] = 0.0
        with pytest.raises(ValueError):
            _icn_from_layer(layer)


# ----------------------------------------------------------------------
# Thresholds baseline
# ----------------------------------------------------------------------
class TestThresholds:
    @pytest.mark.parametrize("out_bits", [2, 4, 8])
    def test_threshold_equals_icn(self, rng, out_bits):
        """The thresholds method is an exact reformulation of the ICN layer."""
        layer = _random_quantized_layer(rng, out_bits=out_bits)
        icn = _icn_from_layer(layer)
        thr = compute_thresholds(icn)
        phi = int_conv2d(layer["x_codes"], layer["w_codes"], layer["z_x"], layer["z_w"],
                         stride=1, padding=1)
        assert np.array_equal(threshold_requantize(phi, thr), icn_requantize(phi, icn))

    def test_threshold_count(self, rng):
        layer = _random_quantized_layer(rng, out_bits=4)
        thr = compute_thresholds(_icn_from_layer(layer))
        c_o = layer["w_codes"].shape[0]
        assert thr.thresholds.shape == (c_o, 16)

    def test_thresholds_monotone_per_channel(self, rng):
        layer = _random_quantized_layer(rng, out_bits=4)
        icn = _icn_from_layer(layer)
        thr = compute_thresholds(icn)
        for c in range(thr.thresholds.shape[0]):
            diffs = np.diff(thr.thresholds[c, 1:])
            if thr.direction[c] > 0:
                assert np.all(diffs >= 0)
            else:
                assert np.all(diffs <= 0)

    def test_negative_gamma_direction(self, rng):
        layer = _random_quantized_layer(rng)
        layer["gamma"] = -np.abs(layer["gamma"])
        thr = compute_thresholds(_icn_from_layer(layer))
        assert np.all(thr.direction == -1)


# ----------------------------------------------------------------------
# Folded batch-norm baseline
# ----------------------------------------------------------------------
class TestFoldedBN:
    def test_folded_matches_float_reference(self, rng):
        """PL+FB with 8-bit weights reproduces the float transfer function."""
        from repro.nn.functional import conv2d_forward

        layer = _random_quantized_layer(rng, per_channel=False, out_bits=8, w_bits=8)
        # Fold gamma/sigma into the real weights, then re-quantize per layer.
        scale = layer["gamma"] / layer["sigma"]
        shift = layer["beta"] - layer["gamma"] * layer["mu"] / layer["sigma"]
        w_folded = layer["w_deq"] * scale.reshape(-1, 1, 1, 1)
        spec_w = QuantSpec(bits=8)
        a, b = float(w_folded.min()), float(w_folded.max())
        s_w, z_w = compute_affine_params(a, b, spec_w)
        w_codes = quantize_affine(np.clip(w_folded, a, b), s_w, z_w, spec_w)
        w_deq = (w_codes - z_w) * s_w

        params = compute_folded_params(
            w_codes, float(s_w), int(z_w), layer["s_in"], layer["z_x"],
            layer["s_out"], layer["z_y"], 8, 8, folded_bias=shift,
        )
        phi = int_conv2d(layer["x_codes"], w_codes, layer["z_x"], int(z_w), stride=1, padding=1)
        out = folded_requantize(phi, params)

        ref_float, _ = conv2d_forward(layer["x_real"], w_deq, None, 1, 1)
        ref_float = ref_float + shift.reshape(1, -1, 1, 1)
        ref = np.clip(np.floor(ref_float / layer["s_out"]), 0, 255).astype(np.int64)
        assert np.abs(out - ref).max() <= 1
        assert (out == ref).mean() > 0.98

    def test_folded_params_scalar_multiplier(self, rng):
        layer = _random_quantized_layer(rng, per_channel=False)
        params = compute_folded_params(
            layer["w_codes"], layer["s_w"], layer["z_w"], layer["s_in"], layer["z_x"],
            layer["s_out"], layer["z_y"], 8, 8,
            folded_bias=np.zeros(layer["w_codes"].shape[0]),
        )
        assert isinstance(params.m0, int) and isinstance(params.n0, int)
