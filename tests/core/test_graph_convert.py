"""Conversion of fake-quantized models into integer-only networks."""

import numpy as np
import pytest

import repro
from repro.core.graph_convert import convert_to_integer_network
from repro.core.icn import ICNParams, FoldedBNParams, ThresholdParams
from repro.core.policy import QuantMethod
from repro.training import evaluate_model


class TestConvertStructure:
    def test_layer_count_and_kinds(self, qat_pc_icn_model):
        net = convert_to_integer_network(qat_pc_icn_model, method=QuantMethod.PC_ICN)
        assert len(net.conv_layers) == len(qat_pc_icn_model.spec) - 1
        kinds = [l.kind for l in net.conv_layers]
        assert "dw" in kinds and ("conv" in kinds or "pw" in kinds)

    def test_per_channel_parameters(self, qat_pc_icn_model):
        net = convert_to_integer_network(qat_pc_icn_model, method=QuantMethod.PC_ICN)
        for layer in net.conv_layers:
            assert isinstance(layer.params, ICNParams)
            assert layer.params.per_channel
            c_o = layer.params.weights_q.shape[0]
            assert layer.params.z_w.shape == (c_o,)
            assert layer.params.m0.shape == (c_o,)

    def test_thresholds_strategy(self, qat_pc_icn_model):
        net = convert_to_integer_network(qat_pc_icn_model, method=QuantMethod.PC_THRESHOLDS)
        for layer in net.conv_layers:
            assert isinstance(layer.params, ThresholdParams)

    def test_folded_strategy(self, qat_pc_icn_model):
        net = convert_to_integer_network(qat_pc_icn_model, method=QuantMethod.PL_FB)
        for layer in net.conv_layers:
            assert isinstance(layer.params, FoldedBNParams)

    def test_scale_chain_consistency(self, qat_pc_icn_model):
        """Each layer's input scale equals the previous layer's output scale."""
        net = convert_to_integer_network(qat_pc_icn_model, method=QuantMethod.PC_ICN)
        for prev, nxt in zip(net.conv_layers[:-1], net.conv_layers[1:]):
            assert np.isclose(prev.out_scale, nxt.in_scale)
            assert prev.out_bits == nxt.in_bits

    def test_rejects_unprepared_model(self, small_dataset):
        model = repro.build_tiny_mobilenet(resolution=16, width=8, num_classes=5)
        with pytest.raises(TypeError):
            convert_to_integer_network(model)

    def test_classifier_converted(self, qat_pc_icn_model):
        net = convert_to_integer_network(qat_pc_icn_model, method=QuantMethod.PC_ICN)
        assert net.classifier is not None
        assert net.classifier.weights_q.shape[0] == qat_pc_icn_model.num_classes


class TestConvertAccuracy:
    def test_icn_conversion_near_lossless(self, qat_pc_icn_model, small_dataset):
        """The paper's central claim about ICN: converting the fake-quantized
        graph to integer-only arithmetic costs almost no accuracy."""
        fq_acc = evaluate_model(qat_pc_icn_model, small_dataset)
        net = convert_to_integer_network(qat_pc_icn_model, method=QuantMethod.PC_ICN)
        preds = net.predict(small_dataset.x_test)
        int_acc = float((preds == small_dataset.y_test).mean())
        assert int_acc >= fq_acc - 0.05

    def test_thresholds_match_icn_predictions(self, qat_pc_icn_model, small_dataset):
        """Integer thresholds are an exact reformulation of the ICN layer, so
        end-to-end predictions must be identical."""
        icn_net = convert_to_integer_network(qat_pc_icn_model, method=QuantMethod.PC_ICN)
        thr_net = convert_to_integer_network(qat_pc_icn_model, method=QuantMethod.PC_THRESHOLDS)
        x = small_dataset.x_test[:16]
        assert np.array_equal(icn_net.predict(x), thr_net.predict(x))

    def test_4bit_model_converts_and_classifies(self, qat_pc_icn_4bit_model, small_dataset):
        net = convert_to_integer_network(qat_pc_icn_4bit_model, method=QuantMethod.PC_ICN)
        for layer in net.conv_layers:
            assert layer.out_bits == 4 and layer.params.w_bits == 4
        preds = net.predict(small_dataset.x_test)
        acc = float((preds == small_dataset.y_test).mean())
        # Far better than the 20 % chance level of the 5-class task.
        assert acc > 0.5
