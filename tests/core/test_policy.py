"""Quantization policy container: construction, invariants, serialisation."""

import pytest

from repro.core.policy import LayerPolicy, QuantMethod, QuantPolicy
from repro.models.model_zoo import mobilenet_v1_spec


@pytest.fixture(scope="module")
def spec():
    return mobilenet_v1_spec(192, 0.5)


class TestQuantMethod:
    def test_per_channel_flags(self):
        assert QuantMethod.PC_ICN.per_channel
        assert QuantMethod.PC_THRESHOLDS.per_channel
        assert not QuantMethod.PL_ICN.per_channel
        assert not QuantMethod.PL_FB.per_channel

    def test_icn_flags(self):
        assert QuantMethod.PL_ICN.uses_icn and QuantMethod.PC_ICN.uses_icn
        assert not QuantMethod.PL_FB.uses_icn

    def test_folding_flag(self):
        assert QuantMethod.PL_FB.folds_batchnorm
        assert not QuantMethod.PC_ICN.folds_batchnorm

    def test_from_value(self):
        assert QuantMethod("PC+ICN") is QuantMethod.PC_ICN


class TestUniformPolicy:
    def test_layer_count(self, spec):
        policy = QuantPolicy.uniform(spec, bits=8)
        assert len(policy) == len(spec)

    def test_uniform_bits(self, spec):
        policy = QuantPolicy.uniform(spec, bits=4)
        assert set(policy.weight_bits()) == {4}
        assert policy.is_uniform(4)
        assert not policy.is_uniform(8)

    def test_input_fixed_at_8(self, spec):
        policy = QuantPolicy.uniform(spec, bits=4)
        assert policy[0].q_in == 8

    def test_chain_consistency(self, spec):
        policy = QuantPolicy.uniform(spec, bits=8)
        policy.validate()  # must not raise

    def test_validate_rejects_broken_chain(self, spec):
        policy = QuantPolicy.uniform(spec, bits=8)
        policy[3].q_in = 4  # breaks q_out[2] == q_in[3]
        with pytest.raises(ValueError):
            policy.validate()

    def test_validate_rejects_bad_bits(self, spec):
        policy = QuantPolicy.uniform(spec, bits=8)
        policy[5].q_w = 3
        with pytest.raises(ValueError):
            policy.validate()

    def test_link_activations_repairs_chain(self, spec):
        policy = QuantPolicy.uniform(spec, bits=8)
        policy[4].q_out = 4
        policy.link_activations()
        assert policy[5].q_in == 4
        policy.validate()


class TestSerialisation:
    def test_dict_roundtrip(self, spec):
        policy = QuantPolicy.uniform(spec, method=QuantMethod.PL_ICN, bits=4)
        policy[2].q_w = 2
        restored = QuantPolicy.from_dict(policy.to_dict())
        assert restored.method is QuantMethod.PL_ICN
        assert restored.weight_bits() == policy.weight_bits()
        assert restored.network == policy.network

    def test_json_roundtrip(self, spec):
        policy = QuantPolicy.uniform(spec, bits=8)
        policy.notes = "test"
        restored = QuantPolicy.from_json(policy.to_json())
        assert restored.notes == "test"
        assert restored.activation_bits() == policy.activation_bits()

    def test_summary_mentions_every_layer(self, spec):
        policy = QuantPolicy.uniform(spec, bits=8)
        text = policy.summary()
        for layer in spec.layers:
            assert layer.name in text

    def test_layer_policy_as_dict(self):
        lp = LayerPolicy(index=3, name="block1_pw", q_w=4, q_in=8, q_out=4)
        d = lp.as_dict()
        assert d == {"index": 3, "name": "block1_pw", "q_w": 4, "q_in": 8, "q_out": 4}
