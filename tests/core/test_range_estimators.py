"""Weight-range estimators (min/max, percentile, MSE, KL)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.range_estimators import (
    RANGE_ESTIMATORS,
    kl_divergence_range,
    minmax_range,
    mse_range,
    per_channel_ranges,
    percentile_range,
    quantization_snr_db,
)


@pytest.fixture
def heavy_tailed(rng):
    """A weight-like tensor with a few large outliers."""
    w = rng.normal(0, 0.1, size=4096)
    w[:8] = rng.choice([-3.0, 3.0], size=8)
    return w


class TestMinMax:
    def test_exact_range(self, rng):
        t = rng.normal(size=100)
        a, b = minmax_range(t, 8)
        assert a == t.min() and b == t.max()


class TestPercentile:
    def test_tighter_than_minmax_on_outliers(self, heavy_tailed):
        a_mm, b_mm = minmax_range(heavy_tailed, 4)
        a_pc, b_pc = percentile_range(heavy_tailed, 4, percentile=99.0)
        assert a_pc >= a_mm and b_pc <= b_mm
        assert b_pc < b_mm  # the outliers are actually clipped

    def test_invalid_percentile(self, rng):
        with pytest.raises(ValueError):
            percentile_range(rng.normal(size=10), 8, percentile=40.0)

    def test_constant_tensor_falls_back(self):
        a, b = percentile_range(np.full(64, 2.0), 8)
        assert a == b == 2.0


class TestMSE:
    def test_improves_snr_on_heavy_tails_at_low_bits(self, heavy_tailed):
        snr_mm = quantization_snr_db(heavy_tailed, 2, minmax_range)
        snr_mse = quantization_snr_db(heavy_tailed, 2, mse_range)
        assert snr_mse >= snr_mm

    def test_range_never_wider_than_minmax(self, heavy_tailed):
        a_mm, b_mm = minmax_range(heavy_tailed, 4)
        a, b = mse_range(heavy_tailed, 4)
        assert a >= a_mm and b <= b_mm

    def test_constant_tensor(self):
        assert mse_range(np.zeros(16), 4) == (0.0, 0.0)


class TestKL:
    def test_symmetric_range(self, heavy_tailed):
        a, b = kl_divergence_range(heavy_tailed, 8)
        assert a == -b and b > 0

    def test_threshold_not_larger_than_max(self, heavy_tailed):
        _, b = kl_divergence_range(heavy_tailed, 8)
        assert b <= np.abs(heavy_tailed).max() + 1e-12

    def test_zero_tensor(self):
        assert kl_divergence_range(np.zeros(100), 8) == (0.0, 0.0)

    def test_clips_outliers_at_low_bits(self, heavy_tailed):
        _, b = kl_divergence_range(heavy_tailed, 4)
        assert b < np.abs(heavy_tailed).max()


class TestPerChannel:
    def test_shapes(self, rng):
        w = rng.normal(size=(8, 4, 3, 3))
        lo, hi = per_channel_ranges(w, 4, minmax_range)
        assert lo.shape == (8,) and hi.shape == (8,)
        assert np.all(hi >= lo)

    def test_matches_manual_per_channel_minmax(self, rng):
        w = rng.normal(size=(6, 2, 3, 3))
        lo, hi = per_channel_ranges(w, 8, minmax_range)
        assert np.allclose(lo, w.reshape(6, -1).min(axis=1))
        assert np.allclose(hi, w.reshape(6, -1).max(axis=1))

    def test_estimator_registry_complete(self):
        assert set(RANGE_ESTIMATORS) == {"minmax", "percentile", "mse", "kl"}


class TestSNR:
    def test_snr_increases_with_bits(self, rng):
        t = rng.normal(size=2048)
        snrs = [quantization_snr_db(t, bits, minmax_range) for bits in (2, 4, 8)]
        assert snrs[0] < snrs[1] < snrs[2]

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), bits=st.sampled_from([2, 4, 8]))
    def test_property_all_estimators_produce_valid_ranges(self, seed, bits):
        rng = np.random.default_rng(seed)
        t = rng.normal(0, rng.uniform(0.01, 2.0), size=256)
        for name, estimator in RANGE_ESTIMATORS.items():
            a, b = estimator(t, bits)
            assert b >= a, f"{name} produced an inverted range"
            assert np.isfinite(a) and np.isfinite(b)
