"""Uniform affine quantizer (Eq. 1-2), including property-based tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.quantizer import (
    QuantSpec,
    broadcast_channelwise,
    compute_affine_params,
    dequantize_affine,
    fake_quantize,
    per_channel_minmax,
    per_tensor_minmax,
    quantization_error,
    quantize_affine,
)


class TestQuantSpec:
    def test_unsigned_range(self):
        spec = QuantSpec(bits=4)
        assert spec.qmin == 0 and spec.qmax == 15 and spec.levels == 16

    def test_signed_range(self):
        spec = QuantSpec(bits=8, signed=True)
        assert spec.qmin == -128 and spec.qmax == 127

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            QuantSpec(bits=0)


class TestAffineParams:
    def test_scale_from_range(self):
        spec = QuantSpec(bits=8)
        scale, zp = compute_affine_params(0.0, 255.0, spec)
        assert np.isclose(scale, 1.0)
        assert zp == 0

    def test_negative_range_zero_point(self):
        spec = QuantSpec(bits=8)
        scale, zp = compute_affine_params(-1.0, 1.0, spec)
        # real 0 maps near the middle of the grid
        assert 126 <= zp <= 129

    def test_degenerate_range_still_represents_constant(self):
        spec = QuantSpec(bits=4)
        scale, zp = compute_affine_params(2.0, 2.0, spec)
        assert scale > 0
        q = quantize_affine(np.array([2.0]), scale, zp, spec)
        assert np.allclose(dequantize_affine(q, scale, zp), 2.0)

    def test_b_less_than_a_rejected(self):
        with pytest.raises(ValueError):
            compute_affine_params(1.0, 0.0, QuantSpec(bits=8))


class TestQuantizeDequantize:
    def test_roundtrip_error_bounded_by_half_scale(self, rng):
        spec = QuantSpec(bits=8)
        t = rng.uniform(-3, 5, size=1000)
        a, b = per_tensor_minmax(t)
        scale, zp = compute_affine_params(a, b, spec)
        q = quantize_affine(np.clip(t, a, b), scale, zp, spec)
        back = dequantize_affine(q, scale, zp)
        assert np.max(np.abs(back - t)) <= scale / 2 + 1e-9

    def test_floor_rounding_truncates(self):
        spec = QuantSpec(bits=8)
        t = np.array([0.99, 1.01])
        q = quantize_affine(t, 1.0, 0, spec, rounding="floor")
        assert list(q) == [0, 1]

    def test_invalid_rounding_mode(self):
        with pytest.raises(ValueError):
            quantize_affine(np.zeros(3), 1.0, 0, QuantSpec(bits=8), rounding="ceil")

    def test_codes_within_grid(self, rng):
        spec = QuantSpec(bits=2)
        t = rng.normal(size=100) * 10
        q = quantize_affine(t, 0.5, 1, spec)
        assert q.min() >= 0 and q.max() <= 3

    def test_fake_quantize_idempotent(self, rng):
        spec = QuantSpec(bits=4)
        t = rng.uniform(-2, 2, size=256)
        a, b = per_tensor_minmax(t)
        fq1 = fake_quantize(t, a, b, spec)
        fq2 = fake_quantize(fq1, a, b, spec)
        assert np.allclose(fq1, fq2)

    def test_quantization_error_decreases_with_bits(self, rng):
        t = rng.normal(size=2048)
        a, b = per_tensor_minmax(t)
        errors = [
            quantization_error(t, fake_quantize(t, a, b, QuantSpec(bits=q)))
            for q in (2, 4, 8)
        ]
        assert errors[0] > errors[1] > errors[2]


class TestRangeStatistics:
    def test_per_tensor_minmax(self):
        t = np.array([[1.0, -2.0], [3.0, 0.0]])
        assert per_tensor_minmax(t) == (-2.0, 3.0)

    def test_per_channel_minmax_shapes(self, rng):
        w = rng.normal(size=(8, 3, 3, 3))
        mins, maxs = per_channel_minmax(w, axis=0)
        assert mins.shape == (8,) and maxs.shape == (8,)
        assert np.all(maxs >= mins)

    def test_per_channel_tighter_than_per_layer(self, rng):
        """Per-channel ranges are never wider than the per-layer range."""
        w = rng.normal(size=(16, 4, 3, 3)) * rng.uniform(0.1, 3.0, size=(16, 1, 1, 1))
        a_pl, b_pl = per_tensor_minmax(w)
        a_pc, b_pc = per_channel_minmax(w, axis=0)
        assert np.all(a_pc >= a_pl) and np.all(b_pc <= b_pl)

    def test_broadcast_channelwise(self):
        v = np.arange(4)
        assert broadcast_channelwise(v, 4, 0).shape == (4, 1, 1, 1)
        assert broadcast_channelwise(v, 2, 1).shape == (1, 4)


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------
finite_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=64),
    elements=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
)


@settings(max_examples=60, deadline=None)
@given(t=finite_arrays, bits=st.sampled_from([2, 4, 8]))
def test_property_dequantized_values_near_range(t, bits):
    """Fake-quantized values lie within one quantization step of [a, b]
    (the zero-point rounding can push grid points slightly past the range
    boundaries, as in Jacob et al. [11])."""
    spec = QuantSpec(bits=bits)
    a, b = float(t.min()), float(t.max())
    scale, _ = compute_affine_params(a, b, spec)
    step = float(np.max(scale))
    fq = fake_quantize(t, a, b, spec)
    assert np.all(fq >= a - step - 1e-9) and np.all(fq <= b + step + 1e-9)


@settings(max_examples=60, deadline=None)
@given(t=finite_arrays, bits=st.sampled_from([2, 4, 8]))
def test_property_roundtrip_error_bounded(t, bits):
    """|t - fq(t)| <= scale for every element (floor or round)."""
    spec = QuantSpec(bits=bits)
    a, b = float(t.min()), float(t.max())
    scale, _ = compute_affine_params(a, b, spec)
    fq = fake_quantize(t, a, b, spec)
    assert np.all(np.abs(fq - np.clip(t, a, b)) <= np.asarray(scale) + 1e-9)


@settings(max_examples=60, deadline=None)
@given(
    t=finite_arrays,
    bits=st.sampled_from([2, 4, 8]),
    rounding=st.sampled_from(["round", "floor"]),
)
def test_property_codes_in_grid(t, bits, rounding):
    spec = QuantSpec(bits=bits)
    a, b = float(t.min()), float(t.max())
    scale, zp = compute_affine_params(a, b, spec)
    q = quantize_affine(np.clip(t, a, b), scale, zp, spec, rounding=rounding)
    assert q.min() >= spec.qmin and q.max() <= spec.qmax


@pytest.mark.parametrize(
    "a,b",
    [
        (0.0, 5e-324),      # positive subnormal span underflowing the divide
        (-5e-324, 0.0),
        (-1.7e308, 1.7e308),  # span overflowing to inf
    ],
)
def test_degenerate_float_ranges_stay_on_grid(a, b):
    """Regression (hypothesis-found): a positive-but-subnormal span used
    to underflow to scale == 0, whose zero-point divide produced
    NaN -> INT64_MIN codes; scale must stay strictly positive and every
    code must land inside the grid."""
    for bits in (2, 4, 8):
        spec = QuantSpec(bits=bits)
        scale, zp = compute_affine_params(a, b, spec)
        assert np.all(np.asarray(scale) > 0)
        for rounding in ("round", "floor"):
            q = quantize_affine(np.array([a, b]), scale, zp, spec, rounding=rounding)
            assert q.min() >= spec.qmin and q.max() <= spec.qmax
