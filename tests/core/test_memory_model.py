"""Memory model tests (Table 1, Eq. 6-7), including paper-level totals."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.memory_model import (
    MemoryModel,
    layer_extra_params_bytes,
    layer_rw_bytes,
    layer_weight_bytes,
    network_ro_bytes,
    network_rw_peak_bytes,
    table1_row,
    tensor_bytes,
)
from repro.core.policy import QuantMethod, QuantPolicy
from repro.models.model_zoo import mobilenet_v1_spec

MB = 1024 * 1024


@pytest.fixture(scope="module")
def spec224():
    return mobilenet_v1_spec(224, 1.0)


class TestTensorBytes:
    def test_byte_exact(self):
        assert tensor_bytes(100, 8) == 100
        assert tensor_bytes(100, 4) == 50
        assert tensor_bytes(100, 2) == 25

    def test_rounds_up(self):
        assert tensor_bytes(3, 2) == 1
        assert tensor_bytes(5, 4) == 3

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            tensor_bytes(-1, 8)
        with pytest.raises(ValueError):
            tensor_bytes(1, 0)

    @settings(max_examples=50, deadline=None)
    @given(count=st.integers(0, 10_000), bits=st.sampled_from([2, 4, 8]))
    def test_property_matches_ceil(self, count, bits):
        assert tensor_bytes(count, bits) == math.ceil(count * bits / 8)

    @settings(max_examples=50, deadline=None)
    @given(count=st.integers(0, 10_000))
    def test_property_monotone_in_bits(self, count):
        assert tensor_bytes(count, 2) <= tensor_bytes(count, 4) <= tensor_bytes(count, 8)


class TestTable1:
    def test_row_pl_fb(self, spec224):
        layer = spec224.layers[14]
        row = table1_row(layer, QuantMethod.PL_FB)
        c_o = layer.out_channels
        assert row["Zw"] == 1 and row["Bq"] == c_o and row["M0"] == 1 and row["N0"] == 1
        assert row["Thr"] == 0

    def test_row_pl_icn(self, spec224):
        layer = spec224.layers[14]
        row = table1_row(layer, QuantMethod.PL_ICN)
        c_o = layer.out_channels
        assert row["Zw"] == 1 and row["M0"] == c_o and row["N0"] == c_o

    def test_row_pc_icn(self, spec224):
        layer = spec224.layers[14]
        row = table1_row(layer, QuantMethod.PC_ICN)
        c_o = layer.out_channels
        assert row["Zw"] == c_o and row["Bq"] == c_o and row["M0"] == c_o

    def test_row_thresholds_grows_exponentially_with_q(self, spec224):
        layer = spec224.layers[14]
        r4 = table1_row(layer, QuantMethod.PC_THRESHOLDS, q_out=4)
        r8 = table1_row(layer, QuantMethod.PC_THRESHOLDS, q_out=8)
        assert r8["Thr"] == 16 * r4["Thr"]

    def test_weights_count_matches_spec(self, spec224):
        layer = spec224.layers[14]
        row = table1_row(layer, QuantMethod.PC_ICN)
        assert row["Weights"] == layer.weight_count

    def test_extra_bytes_ordering(self, spec224):
        """PL+FB < PL+ICN < PC+ICN < PC+Thresholds for any conv layer."""
        layer = spec224.layers[14]
        sizes = [
            layer_extra_params_bytes(layer, m, q_out=4)
            for m in (
                QuantMethod.PL_FB,
                QuantMethod.PL_ICN,
                QuantMethod.PC_ICN,
                QuantMethod.PC_THRESHOLDS,
            )
        ]
        assert sizes == sorted(sizes)
        assert sizes[0] < sizes[-1]


class TestNetworkTotals:
    def test_weight_bytes_224_int8_close_to_paper(self, spec224):
        """Paper Table 2: PL+FB INT8 footprint is ~4.06 MB."""
        policy = QuantPolicy.uniform(spec224, method=QuantMethod.PL_FB, bits=8)
        total = network_ro_bytes(spec224, policy)
        assert 3.9 * MB < total < 4.3 * MB

    def test_weight_bytes_224_int4_close_to_paper(self, spec224):
        """Paper Table 2: PC+ICN INT4 footprint is ~2.12 MB."""
        policy = QuantPolicy.uniform(spec224, method=QuantMethod.PC_ICN, bits=4)
        total = network_ro_bytes(spec224, policy)
        assert 2.0 * MB < total < 2.25 * MB

    def test_thresholds_larger_than_icn(self, spec224):
        p_icn = QuantPolicy.uniform(spec224, method=QuantMethod.PC_ICN, bits=4)
        p_thr = QuantPolicy.uniform(spec224, method=QuantMethod.PC_THRESHOLDS, bits=4)
        assert network_ro_bytes(spec224, p_thr) > network_ro_bytes(spec224, p_icn)

    def test_rw_peak_location(self, spec224):
        """The RW peak of MobileNetV1 224 is in the early high-resolution layers."""
        policy = QuantPolicy.uniform(spec224, bits=8)
        model = MemoryModel(spec224)
        per_layer = model.rw_bytes_per_layer(policy)
        assert per_layer.index(max(per_layer)) < 5

    def test_rw_peak_halves_with_bits(self, spec224):
        p8 = QuantPolicy.uniform(spec224, bits=8)
        p4 = QuantPolicy.uniform(spec224, bits=4)
        # Input stays at 8 bit, so the peak does not halve exactly but must shrink.
        assert network_rw_peak_bytes(spec224, p4) < network_rw_peak_bytes(spec224, p8)

    def test_fits_budget_checks_both_constraints(self, spec224):
        model = MemoryModel(spec224)
        policy = QuantPolicy.uniform(spec224, bits=8)
        ro = model.ro_bytes(policy)
        rw = model.rw_peak_bytes(policy)
        assert model.fits(policy, ro, rw)
        assert not model.fits(policy, ro - 1, rw)
        assert not model.fits(policy, ro, rw - 1)

    def test_report_structure(self, spec224):
        model = MemoryModel(spec224)
        policy = QuantPolicy.uniform(spec224, bits=8)
        report = model.report(policy)
        assert report.ro_bytes == model.ro_bytes(policy)
        assert len(report.per_layer_ro) == len(spec224)
        assert report.ro_mb > 0 and report.rw_kb > 0

    def test_layer_count_mismatch_rejected(self, spec224):
        policy = QuantPolicy.uniform(spec224, bits=8)
        policy.layers.pop()
        with pytest.raises(ValueError):
            network_ro_bytes(spec224, policy)

    def test_weight_bytes_scale_with_precision(self, spec224):
        layer = spec224.layers[14]
        assert layer_weight_bytes(layer, 4) * 2 == layer_weight_bytes(layer, 8)

    def test_rw_bytes_sum_of_in_out(self, spec224):
        layer = spec224.layers[3]
        lp = QuantPolicy.uniform(spec224, bits=8)[3]
        expected = tensor_bytes(layer.input_activation_count, 8) + tensor_bytes(
            layer.output_activation_count, 8
        )
        assert layer_rw_bytes(layer, lp) == expected
