"""Layer-level tests: shapes, parameter registration, train/eval behaviour."""

import numpy as np

from repro import nn


class TestConv2d:
    def test_output_shape(self, rng):
        conv = nn.Conv2d(3, 8, 3, stride=2, padding=1, rng=rng)
        y = conv(rng.normal(size=(2, 3, 16, 16)))
        assert y.shape == (2, 8, 8, 8)

    def test_parameters_registered(self, rng):
        conv = nn.Conv2d(3, 8, 3, rng=rng)
        names = [p.name for p in conv.parameters()]
        assert "weight" in names and "bias" in names

    def test_no_bias(self, rng):
        conv = nn.Conv2d(3, 8, 3, bias=False, rng=rng)
        assert conv.bias is None
        assert len(conv.parameters()) == 1

    def test_backward_accumulates_grads(self, rng):
        conv = nn.Conv2d(2, 4, 3, padding=1, rng=rng)
        x = rng.normal(size=(1, 2, 6, 6))
        y = conv(x)
        gx = conv.backward(np.ones_like(y))
        assert gx.shape == x.shape
        assert np.any(conv.weight.grad != 0)

    def test_macs(self):
        conv = nn.Conv2d(3, 32, 3, stride=2, padding=1)
        assert conv.macs(224, 224) == 112 * 112 * 32 * 3 * 9


class TestDepthwiseConv2d:
    def test_output_shape(self, rng):
        conv = nn.DepthwiseConv2d(6, 3, stride=1, padding=1, rng=rng)
        y = conv(rng.normal(size=(2, 6, 8, 8)))
        assert y.shape == (2, 6, 8, 8)

    def test_macs(self):
        conv = nn.DepthwiseConv2d(32, 3, stride=1, padding=1)
        assert conv.macs(112, 112) == 112 * 112 * 32 * 9


class TestLinear:
    def test_forward_backward(self, rng):
        lin = nn.Linear(10, 4, rng=rng)
        x = rng.normal(size=(3, 10))
        y = lin(x)
        assert y.shape == (3, 4)
        gx = lin.backward(np.ones_like(y))
        assert gx.shape == x.shape
        assert np.allclose(lin.bias.grad, 3.0)


class TestBatchNorm2d:
    def test_training_normalises_batch(self, rng):
        bn = nn.BatchNorm2d(4)
        x = rng.normal(loc=3.0, scale=2.0, size=(8, 4, 5, 5))
        y = bn(x)
        assert abs(y.mean()) < 1e-6
        assert abs(y.var() - 1.0) < 1e-2

    def test_running_stats_updated(self, rng):
        bn = nn.BatchNorm2d(2, momentum=0.5)
        x = rng.normal(loc=1.0, size=(16, 2, 4, 4))
        bn(x)
        assert np.all(bn._buffers["running_mean"] != 0)

    def test_eval_uses_running_stats(self, rng):
        bn = nn.BatchNorm2d(2)
        x = rng.normal(size=(8, 2, 4, 4))
        for _ in range(10):
            bn(x)
        bn.eval()
        y_eval = bn(x)
        bn.train()
        y_train = bn(x)
        # In eval mode the output should be close to, but generally not
        # identical to, the training-mode output.
        assert y_eval.shape == y_train.shape

    def test_freeze_stops_updates(self, rng):
        bn = nn.BatchNorm2d(2)
        bn(rng.normal(size=(4, 2, 4, 4)))
        bn.freeze()
        before = bn._buffers["running_mean"].copy()
        bn(rng.normal(loc=10.0, size=(4, 2, 4, 4)))
        assert np.allclose(bn._buffers["running_mean"], before)
        assert not bn.gamma.requires_grad and not bn.beta.requires_grad

    def test_channel_scale_shift_matches_eval_transform(self, rng):
        bn = nn.BatchNorm2d(3)
        for _ in range(5):
            bn(rng.normal(loc=2.0, scale=1.5, size=(8, 3, 4, 4)))
        bn.eval()
        x = rng.normal(size=(2, 3, 4, 4))
        y = bn(x)
        scale, shift = bn.channel_scale_shift()
        ref = x * scale.reshape(1, -1, 1, 1) + shift.reshape(1, -1, 1, 1)
        assert np.allclose(y, ref)

    def test_backward_gradients_finite(self, rng):
        bn = nn.BatchNorm2d(3)
        x = rng.normal(size=(4, 3, 4, 4))
        y = bn(x)
        gx = bn.backward(rng.normal(size=y.shape))
        assert np.all(np.isfinite(gx))
        assert np.all(np.isfinite(bn.gamma.grad))


class TestActivations:
    def test_relu(self):
        relu = nn.ReLU()
        x = np.array([[-1.0, 0.5], [2.0, -3.0]])
        assert np.allclose(relu(x), [[0, 0.5], [2.0, 0]])
        assert np.allclose(relu.backward(np.ones_like(x)), [[0, 1], [1, 0]])

    def test_relu6(self):
        relu6 = nn.ReLU6()
        x = np.array([-1.0, 3.0, 7.0])
        assert np.allclose(relu6(x), [0, 3, 6])
        assert np.allclose(relu6.backward(np.ones(3)), [0, 1, 0])


class TestContainers:
    def test_flatten_roundtrip(self, rng):
        fl = nn.Flatten()
        x = rng.normal(size=(2, 3, 4, 4))
        y = fl(x)
        assert y.shape == (2, 48)
        assert fl.backward(y).shape == x.shape

    def test_identity(self, rng):
        ident = nn.Identity()
        x = rng.normal(size=(3, 3))
        assert np.allclose(ident(x), x)
        assert np.allclose(ident.backward(x), x)

    def test_global_avg_pool_module(self, rng):
        pool = nn.GlobalAvgPool2d()
        x = rng.normal(size=(2, 4, 6, 6))
        y = pool(x)
        assert y.shape == (2, 4, 1, 1)
        assert pool.backward(np.ones_like(y)).shape == x.shape

    def test_avg_pool_module(self, rng):
        pool = nn.AvgPool2d(2)
        x = rng.normal(size=(1, 2, 4, 4))
        assert pool(x).shape == (1, 2, 2, 2)
