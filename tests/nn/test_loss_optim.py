"""Loss functions and optimizers."""

import numpy as np
import pytest

from repro import nn
from repro.nn.loss import accuracy, softmax, topk_accuracy
from repro.nn.tensor import Parameter


class TestSoftmaxCrossEntropy:
    def test_softmax_sums_to_one(self, rng):
        probs = softmax(rng.normal(size=(5, 10)))
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_softmax_stable_for_large_logits(self):
        probs = softmax(np.array([[1000.0, 1000.0, 0.0]]))
        assert np.isfinite(probs).all()

    def test_loss_of_perfect_prediction_is_small(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss = nn.CrossEntropyLoss()(logits, np.array([0, 1]))
        assert loss < 1e-6

    def test_loss_of_uniform_prediction(self):
        logits = np.zeros((4, 10))
        loss = nn.CrossEntropyLoss()(logits, np.zeros(4, dtype=int))
        assert abs(loss - np.log(10)) < 1e-6

    def test_gradient_matches_softmax_minus_onehot(self, rng):
        logits = rng.normal(size=(3, 5))
        targets = np.array([1, 4, 0])
        crit = nn.CrossEntropyLoss()
        crit(logits, targets)
        grad = crit.backward()
        expected = softmax(logits)
        expected[np.arange(3), targets] -= 1
        assert np.allclose(grad, expected / 3)

    def test_rejects_non_2d_logits(self):
        with pytest.raises(ValueError):
            nn.CrossEntropyLoss()(np.zeros((2, 3, 4)), np.zeros(2, dtype=int))

    def test_accuracy_helpers(self):
        logits = np.array([[1.0, 0.0, 0.0], [0.0, 2.0, 1.0]])
        assert accuracy(logits, np.array([0, 1])) == 1.0
        assert accuracy(logits, np.array([1, 1])) == 0.5
        assert topk_accuracy(logits, np.array([2, 2]), k=2) == 0.5


class TestSGD:
    def test_plain_step(self):
        p = Parameter(np.array([1.0]))
        opt = nn.SGD([p], lr=0.1)
        p.accumulate_grad(np.array([2.0]))
        opt.step()
        assert np.allclose(p.data, 0.8)

    def test_momentum_accumulates(self):
        p = Parameter(np.array([0.0]))
        opt = nn.SGD([p], lr=1.0, momentum=0.9)
        for _ in range(2):
            p.zero_grad()
            p.accumulate_grad(np.array([1.0]))
            opt.step()
        # step1: v=1, p=-1; step2: v=1.9, p=-2.9
        assert np.allclose(p.data, -2.9)

    def test_weight_decay(self):
        p = Parameter(np.array([1.0]))
        opt = nn.SGD([p], lr=0.1, weight_decay=0.5)
        opt.step()  # zero grad, decay only
        assert np.allclose(p.data, 1.0 - 0.1 * 0.5)

    def test_frozen_parameters_skipped(self):
        p = Parameter(np.array([1.0]), requires_grad=False)
        opt = nn.SGD([p], lr=0.1)
        opt.step()
        assert np.allclose(p.data, 1.0)

    def test_invalid_lr_rejected(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.0)


class TestAdam:
    def test_step_direction(self):
        p = Parameter(np.array([1.0]))
        opt = nn.Adam([p], lr=0.1)
        p.accumulate_grad(np.array([1.0]))
        opt.step()
        assert p.data[0] < 1.0

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0]))
        opt = nn.Adam([p], lr=0.2)
        for _ in range(200):
            p.zero_grad()
            p.accumulate_grad(2 * p.data)  # d/dp of p^2
            opt.step()
        assert abs(p.data[0]) < 1e-2

    def test_set_lr(self):
        p = Parameter(np.array([1.0]))
        opt = nn.Adam([p], lr=0.1)
        opt.set_lr(0.01)
        assert opt.lr == 0.01
        with pytest.raises(ValueError):
            opt.set_lr(-1)

    def test_optimizer_zero_grad(self):
        p = Parameter(np.array([1.0]))
        p.accumulate_grad(np.array([3.0]))
        opt = nn.Adam([p], lr=0.1)
        opt.zero_grad()
        assert np.allclose(p.grad, 0.0)
