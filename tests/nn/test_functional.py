"""Tests of the im2col convolution primitives, including numerical
gradient checks against finite differences."""

import numpy as np
import pytest

from repro.nn import functional as F


def _numerical_grad(fn, x, eps=1e-5):
    """Central-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        fp = fn(x)
        x[idx] = orig - eps
        fm = fn(x)
        x[idx] = orig
        grad[idx] = (fp - fm) / (2 * eps)
        it.iternext()
    return grad


class TestOutputSize:
    def test_basic(self):
        assert F.conv_output_size(224, 3, 2, 1) == 112
        assert F.conv_output_size(112, 3, 1, 1) == 112
        assert F.conv_output_size(7, 7, 1, 0) == 1

    def test_stride_two_no_pad(self):
        assert F.conv_output_size(8, 2, 2, 0) == 4


class TestIm2Col:
    def test_shape(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        cols = F.im2col(x, 3, 3, 1, 1)
        assert cols.shape == (2, 3 * 9, 64)

    def test_identity_kernel_1x1(self, rng):
        x = rng.normal(size=(1, 4, 5, 5))
        cols = F.im2col(x, 1, 1, 1, 0)
        assert np.allclose(cols.reshape(1, 4, 25), x.reshape(1, 4, 25))

    def test_col2im_inverts_counts(self, rng):
        """col2im(im2col(x)) multiplies each pixel by its patch multiplicity."""
        x = rng.normal(size=(1, 2, 6, 6))
        cols = F.im2col(x, 3, 3, 1, 1)
        back = F.col2im(cols, x.shape, 3, 3, 1, 1)
        ones = np.ones_like(x)
        counts = F.col2im(F.im2col(ones, 3, 3, 1, 1), x.shape, 3, 3, 1, 1)
        assert np.allclose(back, x * counts)


class TestConv2d:
    def test_matches_direct_convolution(self, rng):
        x = rng.normal(size=(2, 3, 7, 7))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=4)
        out, _ = F.conv2d_forward(x, w, b, stride=1, pad=1)
        # Direct (slow) reference.
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        ref = np.zeros_like(out)
        for n in range(2):
            for o in range(4):
                for i in range(7):
                    for j in range(7):
                        patch = xp[n, :, i : i + 3, j : j + 3]
                        ref[n, o, i, j] = np.sum(patch * w[o]) + b[o]
        assert np.allclose(out, ref)

    def test_stride_two(self, rng):
        x = rng.normal(size=(1, 2, 8, 8))
        w = rng.normal(size=(3, 2, 3, 3))
        out, _ = F.conv2d_forward(x, w, None, stride=2, pad=1)
        assert out.shape == (1, 3, 4, 4)

    def test_backward_weight_gradient(self, rng):
        x = rng.normal(size=(2, 2, 5, 5))
        w = rng.normal(size=(3, 2, 3, 3))
        b = rng.normal(size=3)

        def loss_fn(w_):
            out, _ = F.conv2d_forward(x, w_, b, 1, 1)
            return float((out ** 2).sum() / 2)

        out, cache = F.conv2d_forward(x, w, b, 1, 1)
        _, grad_w, grad_b = F.conv2d_backward(out, cache)
        num = _numerical_grad(loss_fn, w.copy())
        assert np.allclose(grad_w, num, atol=1e-4)

    def test_backward_input_gradient(self, rng):
        x = rng.normal(size=(1, 2, 5, 5))
        w = rng.normal(size=(3, 2, 3, 3))

        def loss_fn(x_):
            out, _ = F.conv2d_forward(x_, w, None, 1, 1)
            return float((out ** 2).sum() / 2)

        out, cache = F.conv2d_forward(x, w, None, 1, 1)
        grad_x, _, _ = F.conv2d_backward(out, cache)
        num = _numerical_grad(loss_fn, x.copy())
        assert np.allclose(grad_x, num, atol=1e-4)

    def test_backward_bias_gradient(self, rng):
        x = rng.normal(size=(2, 2, 4, 4))
        w = rng.normal(size=(3, 2, 3, 3))
        b = rng.normal(size=3)
        out, cache = F.conv2d_forward(x, w, b, 1, 1)
        grad = np.ones_like(out)
        _, _, grad_b = F.conv2d_backward(grad, cache)
        assert np.allclose(grad_b, np.full(3, 2 * 4 * 4))

    def test_channel_mismatch_raises(self, rng):
        x = rng.normal(size=(1, 3, 5, 5))
        w = rng.normal(size=(2, 4, 3, 3))
        with pytest.raises(ValueError):
            F.conv2d_forward(x, w, None, 1, 1)


class TestDepthwiseConv2d:
    def test_matches_grouped_reference(self, rng):
        x = rng.normal(size=(2, 4, 6, 6))
        w = rng.normal(size=(4, 1, 3, 3))
        out, _ = F.depthwise_conv2d_forward(x, w, None, 1, 1)
        # Reference: one standard conv per channel.
        for c in range(4):
            ref, _ = F.conv2d_forward(x[:, c : c + 1], w[c : c + 1], None, 1, 1)
            assert np.allclose(out[:, c : c + 1], ref)

    def test_backward_matches_numerical(self, rng):
        x = rng.normal(size=(1, 3, 5, 5))
        w = rng.normal(size=(3, 1, 3, 3))

        def loss_fn(w_):
            out, _ = F.depthwise_conv2d_forward(x, w_, None, 1, 1)
            return float((out ** 2).sum() / 2)

        out, cache = F.depthwise_conv2d_forward(x, w, None, 1, 1)
        grad_x, grad_w, _ = F.depthwise_conv2d_backward(out, cache)
        assert np.allclose(grad_w, _numerical_grad(loss_fn, w.copy()), atol=1e-4)

        def loss_x(x_):
            out, _ = F.depthwise_conv2d_forward(x_, w, None, 1, 1)
            return float((out ** 2).sum() / 2)

        assert np.allclose(grad_x, _numerical_grad(loss_x, x.copy()), atol=1e-4)

    def test_wrong_weight_shape_raises(self, rng):
        x = rng.normal(size=(1, 3, 5, 5))
        w = rng.normal(size=(4, 1, 3, 3))
        with pytest.raises(ValueError):
            F.depthwise_conv2d_forward(x, w, None, 1, 1)


class TestPooling:
    def test_avg_pool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out, _ = F.avg_pool2d_forward(x, 2)
        assert out.shape == (1, 1, 2, 2)
        assert np.allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_backward_spreads_uniformly(self, rng):
        x = rng.normal(size=(1, 2, 4, 4))
        out, cache = F.avg_pool2d_forward(x, 2)
        grad = np.ones_like(out)
        gx = F.avg_pool2d_backward(grad, cache)
        assert np.allclose(gx, 0.25)

    def test_global_avg_pool(self, rng):
        x = rng.normal(size=(2, 3, 5, 5))
        out, cache = F.global_avg_pool2d_forward(x)
        assert out.shape == (2, 3, 1, 1)
        assert np.allclose(out[..., 0, 0], x.mean(axis=(2, 3)))
        gx = F.global_avg_pool2d_backward(np.ones_like(out), cache)
        assert np.allclose(gx, 1.0 / 25)


class TestLinear:
    def test_forward(self, rng):
        x = rng.normal(size=(4, 6))
        w = rng.normal(size=(3, 6))
        b = rng.normal(size=3)
        out, _ = F.linear_forward(x, w, b)
        assert np.allclose(out, x @ w.T + b)

    def test_backward(self, rng):
        x = rng.normal(size=(4, 6))
        w = rng.normal(size=(3, 6))
        b = rng.normal(size=3)
        out, cache = F.linear_forward(x, w, b)
        grad_x, grad_w, grad_b = F.linear_backward(out, cache)
        assert np.allclose(grad_w, out.T @ x)
        assert np.allclose(grad_b, out.sum(axis=0))
        assert np.allclose(grad_x, out @ w)
