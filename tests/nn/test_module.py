"""Module container mechanics: registration, traversal, state dict, modes."""

import numpy as np

from repro import nn
from repro.nn.module import Module
from repro.nn.tensor import Parameter


class _Toy(Module):
    def __init__(self):
        super().__init__()
        self.w = Parameter(np.ones(3))
        self.child = nn.Linear(4, 2)

    def forward(self, x):
        return x

    def backward(self, g):
        return g


class TestParameter:
    def test_grad_accumulation(self):
        p = Parameter(np.zeros(4))
        p.accumulate_grad(np.ones(4))
        p.accumulate_grad(np.ones(4))
        assert np.allclose(p.grad, 2.0)
        p.zero_grad()
        assert np.allclose(p.grad, 0.0)

    def test_frozen_parameter_ignores_grads(self):
        p = Parameter(np.zeros(2), requires_grad=False)
        p.accumulate_grad(np.ones(2))
        assert np.allclose(p.grad, 0.0)

    def test_shape_mismatch_raises(self):
        p = Parameter(np.zeros(2))
        try:
            p.accumulate_grad(np.ones(3))
            assert False, "expected ValueError"
        except ValueError:
            pass

    def test_copy_(self):
        p = Parameter(np.zeros(3))
        p.copy_(np.arange(3))
        assert np.allclose(p.data, [0, 1, 2])


class TestModule:
    def test_parameter_collection_recurses(self):
        toy = _Toy()
        params = toy.parameters()
        assert len(params) == 3  # w + child weight + child bias

    def test_named_parameters_prefixes(self):
        toy = _Toy()
        names = dict(toy.named_parameters()).keys()
        assert "w" in names
        assert "child.weight" in names and "child.bias" in names

    def test_modules_iteration(self):
        toy = _Toy()
        mods = list(toy.modules())
        assert toy in mods and toy.child in mods

    def test_train_eval_propagates(self):
        toy = _Toy()
        toy.eval()
        assert not toy.training and not toy.child.training
        toy.train()
        assert toy.training and toy.child.training

    def test_zero_grad(self):
        toy = _Toy()
        toy.w.accumulate_grad(np.ones(3))
        toy.zero_grad()
        assert np.allclose(toy.w.grad, 0.0)

    def test_state_dict_roundtrip(self):
        toy = _Toy()
        toy.w.data[...] = 7.0
        state = toy.state_dict()
        other = _Toy()
        other.load_state_dict(state)
        assert np.allclose(other.w.data, 7.0)
        assert np.allclose(other.child.weight.data, toy.child.weight.data)

    def test_state_dict_includes_buffers(self):
        bn = nn.BatchNorm2d(2)
        bn._buffers["running_mean"][...] = 3.0
        state = bn.state_dict()
        assert any("running_mean" in k for k in state)

    def test_load_state_dict_restores_buffers(self):
        bn = nn.BatchNorm2d(2)
        bn._buffers["running_mean"][...] = 3.0
        state = bn.state_dict()
        fresh = nn.BatchNorm2d(2)
        fresh.load_state_dict(state)
        assert np.allclose(fresh._buffers["running_mean"], 3.0)


class TestSequential:
    def test_forward_backward_chain(self, rng):
        seq = nn.Sequential(nn.Linear(4, 8, rng=rng), nn.ReLU(), nn.Linear(8, 2, rng=rng))
        x = rng.normal(size=(3, 4))
        y = seq(x)
        assert y.shape == (3, 2)
        gx = seq.backward(np.ones_like(y))
        assert gx.shape == x.shape

    def test_indexing_and_len(self, rng):
        seq = nn.Sequential(nn.ReLU(), nn.ReLU6())
        assert len(seq) == 2
        assert isinstance(seq[1], nn.ReLU6)
        assert [type(m).__name__ for m in seq] == ["ReLU", "ReLU6"]

    def test_append(self):
        seq = nn.Sequential()
        seq.append(nn.ReLU())
        assert len(seq) == 1
