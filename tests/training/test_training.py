"""Full-precision training and the QAT pipeline (preparation + schedule)."""

import pytest

import repro
from repro import nn
from repro.core.fake_quant import QuantConvBNBlock, QuantLinear
from repro.core.policy import QuantMethod, QuantPolicy
from repro.training import (
    QATConfig,
    QATTrainer,
    evaluate_model,
    prepare_qat,
)


class TestTrainer:
    def test_training_improves_over_chance(self, small_dataset, pretrained_tiny_model):
        _, result = pretrained_tiny_model
        chance = 1.0 / small_dataset.num_classes
        assert result.final_test_acc > chance + 0.3

    def test_loss_decreases(self, pretrained_tiny_model):
        _, result = pretrained_tiny_model
        assert result.train_loss[-1] < result.train_loss[0]

    def test_history_lengths(self, pretrained_tiny_model):
        _, result = pretrained_tiny_model
        assert len(result.train_loss) == len(result.train_acc) == len(result.test_acc)


class TestPrepareQAT:
    def _fresh_model(self):
        return repro.build_tiny_mobilenet(resolution=16, width=8, num_classes=5, seed=0)

    def test_blocks_replaced(self, small_dataset):
        model = self._fresh_model()
        policy = QuantPolicy.uniform(model.spec, method=QuantMethod.PC_ICN, bits=4)
        prepare_qat(model, policy)
        assert all(isinstance(b, QuantConvBNBlock) for b in model.features)
        assert isinstance(model.classifier, QuantLinear)

    def test_bits_taken_from_policy(self, small_dataset):
        model = self._fresh_model()
        policy = QuantPolicy.uniform(model.spec, method=QuantMethod.PC_ICN, bits=8)
        policy[2].q_w = 4
        policy[2].q_out = 2
        policy.link_activations()
        prepare_qat(model, policy)
        blocks = list(model.features)
        assert blocks[2].weight_quant.bits == 4
        assert blocks[2].act_quant.bits == 2
        assert blocks[0].weight_quant.bits == 8

    def test_weight_scheme_follows_method(self):
        model_pc = self._fresh_model()
        policy_pc = QuantPolicy.uniform(model_pc.spec, method=QuantMethod.PC_ICN, bits=8)
        prepare_qat(model_pc, policy_pc)
        assert list(model_pc.features)[0].weight_quant.scheme == "minmax_pc"

        model_pl = self._fresh_model()
        policy_pl = QuantPolicy.uniform(model_pl.spec, method=QuantMethod.PL_ICN, bits=8)
        prepare_qat(model_pl, policy_pl)
        assert list(model_pl.features)[0].weight_quant.scheme == "pact_pl"

    def test_fold_flag_follows_method(self):
        model = self._fresh_model()
        policy = QuantPolicy.uniform(model.spec, method=QuantMethod.PL_FB, bits=8)
        prepare_qat(model, policy)
        assert all(b.fold_bn for b in model.features)

    def test_calibration_initialises_alphas(self, small_dataset):
        model = self._fresh_model()
        policy = QuantPolicy.uniform(model.spec, method=QuantMethod.PC_ICN, bits=8)
        prepare_qat(model, policy, calibration_data=small_dataset.x_train[:32])
        alphas = [float(b.act_quant.alpha.data[0]) for b in model.features]
        assert all(a > 0 for a in alphas)
        assert len(set(round(a, 6) for a in alphas)) > 1  # not all the default 6.0

    def test_policy_length_mismatch_rejected(self):
        model = self._fresh_model()
        other_spec = repro.build_small_cnn(resolution=16, channels=8, num_classes=5).spec
        policy = QuantPolicy.uniform(other_spec, bits=8)
        with pytest.raises(ValueError):
            prepare_qat(model, policy)

    def test_double_preparation_rejected(self):
        model = self._fresh_model()
        policy = QuantPolicy.uniform(model.spec, bits=8)
        prepare_qat(model, policy)
        with pytest.raises(ValueError):
            prepare_qat(model, policy)

    def test_forward_still_works_after_preparation(self, small_dataset):
        model = self._fresh_model()
        policy = QuantPolicy.uniform(model.spec, bits=8)
        prepare_qat(model, policy, calibration_data=small_dataset.x_train[:16])
        logits = model(small_dataset.x_test[:4])
        assert logits.shape == (4, 5)


class TestQATTrainer:
    def test_qat_recovers_accuracy(self, qat_pc_icn_model, small_dataset):
        acc = evaluate_model(qat_pc_icn_model, small_dataset)
        assert acc > 0.8

    def test_4bit_qat_above_chance(self, qat_pc_icn_4bit_model, small_dataset):
        acc = evaluate_model(qat_pc_icn_4bit_model, small_dataset)
        assert acc > 0.5

    def test_bn_frozen_after_first_epoch(self, qat_pc_icn_model):
        for module in qat_pc_icn_model.modules():
            if isinstance(module, nn.BatchNorm2d):
                assert module.frozen

    def test_lr_schedule_applied(self, small_dataset):
        model = repro.build_tiny_mobilenet(resolution=16, width=8, num_classes=5, seed=0)
        policy = QuantPolicy.uniform(model.spec, bits=8)
        prepare_qat(model, policy)
        trainer = QATTrainer(model, QATConfig(epochs=3, lr=1e-3, lr_schedule={1: 1e-4, 2: 1e-5}))
        trainer.fit(small_dataset)
        assert trainer.optimizer.lr == pytest.approx(1e-5)

    def test_pact_alphas_stay_positive(self, qat_pc_icn_model):
        for block in qat_pc_icn_model.features:
            assert float(block.act_quant.alpha.data[0]) > 0
