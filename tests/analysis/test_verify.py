"""Static plan verifier: acceptance over the zoo, rejection of corruption."""

import numpy as np
import pytest

from repro.analysis import PlanVerificationError, verify_artifact, verify_plan
from repro.inference.plan import ExecutionPlan
from repro.inference.testing import integer_network_from_spec
from repro.models.model_zoo import all_mobilenet_configs
from repro.runtime import Session
from repro.runtime.options import CompileOptions, SessionOptions

HW = (32, 32)
CONFIGS = all_mobilenet_configs(num_classes=5)

#: Every backend-relevant compile flag combination the issue names.
FLAG_COMBOS = [
    CompileOptions(input_hw=HW),
    CompileOptions(input_hw=HW, narrow=False),
    CompileOptions(input_hw=HW, refined_bound=False),
    CompileOptions(input_hw=HW, backend="int32"),
]


def _network(spec, act_bits=8, w_bits=8, seed=0):
    return integer_network_from_spec(
        spec, rng=np.random.default_rng(seed), act_bits=act_bits, w_bits=w_bits
    )


class TestZooAcceptance:
    @pytest.mark.parametrize("spec", CONFIGS, ids=[s.name for s in CONFIGS])
    def test_all_zoo_configs_verify_under_every_flag_combo(self, spec):
        net = _network(spec)
        for options in FLAG_COMBOS:
            plan = ExecutionPlan(net, options)
            report = verify_plan(plan, HW)
            assert report.ok
            # Every rule family actually ran.
            for rule in ("acc-bound", "container-dtype", "requant-shift",
                         "slab-aliasing", "structure"):
                assert report.count(rule) > 0, rule

    @pytest.mark.parametrize("act_bits", [2, 4, 8])
    @pytest.mark.parametrize("w_bits", [2, 4, 8])
    def test_bit_mixes_verify(self, act_bits, w_bits):
        net = _network(CONFIGS[0], act_bits=act_bits, w_bits=w_bits)
        report = verify_plan(ExecutionPlan(net, CompileOptions(input_hw=HW)), HW)
        assert report.ok

    def test_threshold_strategy_verifies(self):
        net = integer_network_from_spec(
            CONFIGS[0], rng=np.random.default_rng(3), strategy="thresholds"
        )
        report = verify_plan(ExecutionPlan(net, CompileOptions(input_hw=HW)), HW)
        assert report.ok

    def test_split_k_layer_verifies(self):
        # The widest config's last pointwise layer exceeds the float32
        # bound and compiles to split-K sgemm; the verifier re-proves the
        # per-chunk bounds.
        net = _network(CONFIGS[-1])
        plan = ExecutionPlan(net, CompileOptions(input_hw=HW))
        assert any(l.split_k is not None for l in plan.layers)
        assert verify_plan(plan, HW).ok

    def test_shape_polymorphic_plan_verifies(self):
        net = _network(CONFIGS[0])
        plan = ExecutionPlan(
            net, CompileOptions(input_hw=(24, 24), max_input_hw=HW)
        )
        report = verify_plan(plan)
        assert report.ok
        # Both the max arena and the adopted smaller geometry were walked.
        assert report.count("slab-aliasing") >= 2 * len(plan.layers)


def _fresh_plan(seed=0):
    net = _network(CONFIGS[0], seed=seed)
    return ExecutionPlan(net, CompileOptions(input_hw=HW))


class TestCorruptionRejection:
    def test_shift_out_of_range_names_the_layer(self):
        plan = _fresh_plan()
        victim = plan.layers[3]
        victim.requant.rshift = np.full_like(
            np.asarray(victim.requant.rshift), 70
        )
        with pytest.raises(PlanVerificationError) as exc_info:
            verify_plan(plan, HW)
        err = exc_info.value
        assert "requant-shift" in err.rules
        assert victim.name in err.layers
        assert victim.name in str(err)

    def test_forged_container_dtype_names_the_layer(self):
        plan = _fresh_plan()
        victim = plan.layers[2]
        victim.out_dtype = np.dtype(np.uint16)  # wider than container_dtype(8)
        with pytest.raises(PlanVerificationError) as exc_info:
            verify_plan(plan, HW)
        err = exc_info.value
        assert "container-dtype" in err.rules
        assert victim.name in err.layers

    def test_forged_backend_overflows_accumulator(self):
        # The widest config has a layer whose refined bound exceeds 2^24;
        # forging it onto the float32 tier must fail acc-bound.
        net = _network(CONFIGS[-1])
        plan = ExecutionPlan(net, CompileOptions(input_hw=HW))
        victim = next(l for l in plan.layers if l.acc_bound >= (1 << 24))
        victim.backend = "blas"
        victim.gemm_dtype = np.dtype(np.float32)
        victim.acc_dtype = np.dtype(np.float32)
        victim.split_k = None
        victim.w2_chunks = None
        with pytest.raises(PlanVerificationError) as exc_info:
            verify_plan(plan, HW)
        err = exc_info.value
        assert "acc-bound" in err.rules
        assert victim.name in err.layers

    def test_understated_acc_bound_rejected(self):
        plan = _fresh_plan()
        victim = plan.layers[5]
        victim.acc_bound = 1  # claims a bound far below the true one
        with pytest.raises(PlanVerificationError) as exc_info:
            verify_plan(plan, HW)
        assert "acc-bound" in exc_info.value.rules
        assert victim.name in exc_info.value.layers

    def test_overlapping_slab_schedule_rejected(self):
        plan = _fresh_plan()
        n = len(plan.layers)
        schedule = [((i - 1) % 2, i % 2) for i in range(n)]
        in_slot, _ = schedule[4]
        schedule[4] = (in_slot, in_slot)  # output aliases the live input
        with pytest.raises(PlanVerificationError) as exc_info:
            verify_plan(plan, HW, schedule=schedule)
        err = exc_info.value
        assert "slab-aliasing" in err.rules
        assert plan.layers[4].name in err.layers

    def test_stale_read_schedule_rejected(self):
        plan = _fresh_plan()
        n = len(plan.layers)
        assert n >= 6
        schedule = [((i - 1) % 2, i % 2) for i in range(n)]
        # Layer 5 reads the slot its predecessor did NOT write: the value
        # it consumes died two layers ago.
        schedule[5] = (schedule[5][1], schedule[5][0])
        with pytest.raises(PlanVerificationError) as exc_info:
            verify_plan(plan, HW, schedule=schedule)
        err = exc_info.value
        assert "slab-aliasing" in err.rules

    def test_forged_multiplier_rejected(self):
        plan = _fresh_plan()
        victim = plan.layers[1]
        victim.requant.m0 = np.asarray(victim.requant.m0, dtype=np.int64) * 0 + (1 << 31)
        with pytest.raises(PlanVerificationError) as exc_info:
            verify_plan(plan, HW)
        assert "requant-shift" in exc_info.value.rules
        assert victim.name in exc_info.value.layers

    def test_report_collects_every_violation(self):
        plan = _fresh_plan()
        plan.layers[1].out_dtype = np.dtype(np.uint16)
        plan.layers[3].requant.rshift = np.full_like(
            np.asarray(plan.layers[3].requant.rshift), -1
        )
        report = verify_plan(plan, HW, raise_on_violation=False)
        assert not report.ok
        rules = {v.rule for v in report.violations}
        assert "container-dtype" in rules
        assert "requant-shift" in rules


class TestArtifactAndSession:
    def test_saved_artifact_verifies(self, tmp_path):
        net = _network(CONFIGS[0])
        session = Session(
            net, compile_options=CompileOptions(input_hw=HW),
            options=SessionOptions(input_hw=HW),
        )
        path = session.save(tmp_path / "model.artifact")
        session.close()
        report = verify_artifact(path)
        assert report.ok
        # The manifest cross-checks ran on top of the plan rules.
        assert report.count("acc-bound") > len(CONFIGS[0].layers) - 1

    def test_corrupt_manifest_backend_rejected(self, tmp_path):
        import json

        net = _network(CONFIGS[0])
        session = Session(
            net, compile_options=CompileOptions(input_hw=HW),
            options=SessionOptions(input_hw=HW),
        )
        path = session.save(tmp_path / "model.artifact")
        session.close()
        manifest_path = path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        victim = manifest["network"]["conv_layers"][2]
        victim["gemm_backend"] = "int64" if victim["gemm_backend"] != "int64" else "blas"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(PlanVerificationError) as exc_info:
            verify_artifact(path)
        err = exc_info.value
        assert "acc-bound" in err.rules
        assert victim["name"] in err.layers

    def test_corrupt_arena_peak_rejected(self, tmp_path):
        import json

        net = _network(CONFIGS[0])
        session = Session(
            net, compile_options=CompileOptions(input_hw=HW),
            options=SessionOptions(input_hw=HW),
        )
        path = session.save(tmp_path / "model.artifact")
        session.close()
        manifest_path = path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["network"]["arena"]["rw_peak_bytes"] //= 2
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(PlanVerificationError) as exc_info:
            verify_artifact(path)
        assert "slab-aliasing" in exc_info.value.rules

    def test_session_verify(self):
        net = _network(CONFIGS[0])
        session = Session(
            net, compile_options=CompileOptions(input_hw=HW),
            options=SessionOptions(input_hw=HW),
        )
        report = session.verify()
        assert report.ok
        session.close()
        with pytest.raises(RuntimeError):
            session.verify()

    def test_verification_is_static(self):
        """verify_plan must never execute the network's kernels."""
        plan = _fresh_plan()

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("verification executed a layer")

        for layer in plan.layers:
            layer.__class__.__call__ = layer.__class__.__call__  # sanity
            layer._accumulate_int = boom
        old_run = ExecutionPlan.run
        ExecutionPlan.run = boom
        try:
            assert verify_plan(plan, HW).ok
        finally:
            ExecutionPlan.run = old_run
