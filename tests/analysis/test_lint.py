"""AST lint rules: each rule fires on a crafted snippet and respects exemptions."""

import textwrap

from repro.analysis import lint_file, lint_package, lint_paths


def _lint_snippet(tmp_path, source, rel="repro/serving/mod.py"):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return lint_file(path, rel=rel)


def _rules(violations):
    return [v.rule for v in violations]


class TestAsyncBlocking:
    def test_time_sleep_in_serving_coroutine(self, tmp_path):
        violations = _lint_snippet(
            tmp_path,
            """\
            import time

            async def handler():
                time.sleep(1)
            """,
        )
        assert _rules(violations) == ["async-blocking"]
        assert violations[0].line == 4

    def test_open_and_future_result(self, tmp_path):
        violations = _lint_snippet(
            tmp_path,
            """\
            async def handler(fut):
                with open("/tmp/x") as f:
                    f.read()
                return fut.result()
            """,
        )
        assert _rules(violations) == ["async-blocking", "async-blocking"]

    def test_nested_sync_def_is_exempt(self, tmp_path):
        # A sync helper defined inside a coroutine runs in an executor;
        # its blocking calls are not on the event loop.
        violations = _lint_snippet(
            tmp_path,
            """\
            import time

            async def handler(loop):
                def blocking_part():
                    time.sleep(1)
                await loop.run_in_executor(None, blocking_part)
            """,
        )
        assert violations == []

    def test_outside_serving_not_checked(self, tmp_path):
        violations = _lint_snippet(
            tmp_path,
            """\
            import time

            async def handler():
                time.sleep(1)
            """,
            rel="repro/runtime/mod.py",
        )
        assert violations == []

    def test_timeout_result_allowed(self, tmp_path):
        # fut.result(timeout) inside async code is still suspicious but the
        # rule only flags the argless form used to force-join a future.
        violations = _lint_snippet(
            tmp_path,
            """\
            async def handler(fut):
                return fut.result(0)
            """,
        )
        assert violations == []


class TestHotAlloc:
    def test_allocation_in_hot_function(self, tmp_path):
        violations = _lint_snippet(
            tmp_path,
            """\
            import numpy as np

            # hot
            def gemm(a, b):
                out = np.zeros((4, 4))
                return out
            """,
            rel="repro/inference/kernels.py",
        )
        assert _rules(violations) == ["hot-alloc"]

    def test_astype_and_copy_in_hot_function(self, tmp_path):
        violations = _lint_snippet(
            tmp_path,
            """\
            def gemm(a):  # hot
                b = a.astype("int64")
                c = a.copy()
                d = a.astype("int64", copy=False)
                return b, c, d
            """,
            rel="repro/inference/plan.py",
        )
        assert _rules(violations) == ["hot-alloc", "hot-alloc"]
        assert {v.line for v in violations} == {2, 3}

    def test_unmarked_function_not_checked(self, tmp_path):
        violations = _lint_snippet(
            tmp_path,
            """\
            import numpy as np

            def setup(a):
                return np.zeros_like(a)
            """,
            rel="repro/inference/kernels.py",
        )
        assert violations == []

    def test_hot_marker_ignored_outside_kernel_files(self, tmp_path):
        violations = _lint_snippet(
            tmp_path,
            """\
            import numpy as np

            # hot
            def helper(a):
                return np.zeros_like(a)
            """,
            rel="repro/runtime/session.py",
        )
        assert violations == []


class TestExceptSwallow:
    def test_bare_except_pass(self, tmp_path):
        violations = _lint_snippet(
            tmp_path,
            """\
            def f():
                try:
                    risky()
                except:
                    pass
            """,
            rel="repro/runtime/mod.py",
        )
        assert _rules(violations) == ["except-swallow"]

    def test_broad_exception_pass(self, tmp_path):
        violations = _lint_snippet(
            tmp_path,
            """\
            def f():
                try:
                    risky()
                except Exception:
                    pass
            """,
            rel="repro/runtime/mod.py",
        )
        assert _rules(violations) == ["except-swallow"]

    def test_broad_exception_in_tuple(self, tmp_path):
        violations = _lint_snippet(
            tmp_path,
            """\
            def f():
                try:
                    risky()
                except (ValueError, BaseException):
                    pass
            """,
            rel="repro/runtime/mod.py",
        )
        assert _rules(violations) == ["except-swallow"]

    def test_narrow_except_pass_allowed(self, tmp_path):
        violations = _lint_snippet(
            tmp_path,
            """\
            def f():
                try:
                    risky()
                except OSError:
                    pass
            """,
            rel="repro/runtime/mod.py",
        )
        assert violations == []

    def test_handled_broad_except_allowed(self, tmp_path):
        violations = _lint_snippet(
            tmp_path,
            """\
            import logging

            def f():
                try:
                    risky()
                except Exception:
                    logging.exception("risky failed")
            """,
            rel="repro/runtime/mod.py",
        )
        assert violations == []


class TestLockOrder:
    def test_inconsistent_acquisition_order(self, tmp_path):
        violations = _lint_snippet(
            tmp_path,
            """\
            def a(self):
                with self._lock:
                    with self._stats_lock:
                        pass

            def b(self):
                with self._stats_lock:
                    with self._lock:
                        pass
            """,
            rel="repro/runtime/mod.py",
        )
        # One violation per direction of the conflicting edge.
        assert set(_rules(violations)) == {"lock-order"}
        assert violations

    def test_reacquire_same_lock(self, tmp_path):
        violations = _lint_snippet(
            tmp_path,
            """\
            def a(self):
                with self._lock:
                    with self._lock:
                        pass
            """,
            rel="repro/runtime/mod.py",
        )
        assert _rules(violations) == ["lock-order"]

    def test_consistent_order_allowed(self, tmp_path):
        violations = _lint_snippet(
            tmp_path,
            """\
            def a(self):
                with self._lock:
                    with self._stats_lock:
                        pass

            def b(self):
                with self._lock:
                    with self._stats_lock:
                        pass
            """,
            rel="repro/runtime/mod.py",
        )
        assert violations == []


class TestUnusedImportAndMutableDefault:
    def test_unused_import(self, tmp_path):
        violations = _lint_snippet(
            tmp_path,
            """\
            import os
            import sys

            print(sys.argv)
            """,
            rel="repro/runtime/mod.py",
        )
        assert _rules(violations) == ["unused-import"]
        assert "os" in violations[0].message

    def test_all_reexport_counts_as_use(self, tmp_path):
        violations = _lint_snippet(
            tmp_path,
            """\
            from repro.runtime.options import CompileOptions

            __all__ = ["CompileOptions"]
            """,
            rel="repro/runtime/mod.py",
        )
        assert violations == []

    def test_init_py_exempt(self, tmp_path):
        violations = _lint_snippet(
            tmp_path,
            """\
            from repro.runtime.options import CompileOptions
            """,
            rel="repro/runtime/__init__.py",
        )
        assert violations == []

    def test_mutable_default(self, tmp_path):
        violations = _lint_snippet(
            tmp_path,
            """\
            def f(acc=[]):
                return acc
            """,
            rel="repro/runtime/mod.py",
        )
        assert _rules(violations) == ["mutable-default"]


class TestExemptions:
    def test_targeted_ignore_suppresses_named_rule(self, tmp_path):
        violations = _lint_snippet(
            tmp_path,
            """\
            import numpy as np

            # hot
            def gemm(a):
                out = np.zeros((4, 4))  # analysis: ignore[hot-alloc]
                return out
            """,
            rel="repro/inference/kernels.py",
        )
        assert violations == []

    def test_bare_ignore_suppresses_everything(self, tmp_path):
        violations = _lint_snippet(
            tmp_path,
            """\
            def f():
                try:
                    risky()
                except Exception:  # analysis: ignore
                    pass
            """,
            rel="repro/runtime/mod.py",
        )
        assert violations == []

    def test_ignore_for_other_rule_does_not_suppress(self, tmp_path):
        violations = _lint_snippet(
            tmp_path,
            """\
            def f():
                try:
                    risky()
                except Exception:  # analysis: ignore[hot-alloc]
                    pass
            """,
            rel="repro/runtime/mod.py",
        )
        assert _rules(violations) == ["except-swallow"]


class TestRepoSelfLint:
    def test_package_is_clean(self):
        violations = lint_package()
        assert violations == [], "\n".join(str(v) for v in violations)

    def test_lint_paths_matches_lint_file(self, tmp_path):
        path = tmp_path / "repro" / "serving" / "mod.py"
        path.parent.mkdir(parents=True)
        path.write_text("import os\n")
        violations = lint_paths([path], root=tmp_path)
        assert _rules(violations) == ["unused-import"]
        assert violations[0].path == "repro/serving/mod.py"
