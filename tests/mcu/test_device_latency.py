"""Device presets and the CMSIS-NN-style latency model."""

import pytest

from repro.core.policy import QuantMethod, QuantPolicy
from repro.mcu.device import KB, MB, STM32F7, STM32H7, STM32L4
from repro.mcu.latency import (
    CMSISNNCostModel,
    DEFAULT_COST_MODEL,
    LatencyBreakdown,
    layer_cycles,
    network_cycles,
)
from repro.models.model_zoo import mobilenet_v1_spec


class TestDevice:
    def test_stm32h7_matches_paper(self):
        assert STM32H7.flash_bytes == 2 * MB
        assert STM32H7.ram_bytes == 512 * KB
        assert STM32H7.clock_hz == 400_000_000

    def test_unit_conversions(self):
        assert STM32H7.flash_mb == 2.0
        assert STM32H7.ram_kb == 512.0
        assert STM32H7.cycles_to_seconds(400_000_000) == 1.0
        assert STM32H7.cycles_to_fps(40_000_000) == 10.0

    def test_with_budgets_override(self):
        dev = STM32H7.with_budgets(flash_bytes=1 * MB)
        assert dev.flash_bytes == 1 * MB
        assert dev.ram_bytes == STM32H7.ram_bytes
        assert dev.clock_hz == STM32H7.clock_hz

    def test_presets_distinct(self):
        assert STM32F7.flash_bytes < STM32H7.flash_bytes
        assert STM32L4.clock_hz < STM32F7.clock_hz


class TestLayerCycles:
    def setup_method(self):
        self.spec = mobilenet_v1_spec(224, 1.0)

    def test_more_macs_cost_more(self):
        small = self.spec.layers[1]   # early depthwise
        big = self.spec.layers[24]    # late pointwise
        assert big.macs > small.macs / 10  # sanity on the spec itself
        c_small = layer_cycles(small, 8, 8, 8)
        c_big = layer_cycles(self.spec.layers[2], 8, 8, 8)
        assert c_big > c_small

    def test_sub_byte_weights_cost_more_per_mac(self):
        layer = self.spec.layers[14]
        assert layer_cycles(layer, 4, 8, 8) > layer_cycles(layer, 8, 8, 8)
        assert layer_cycles(layer, 2, 8, 8) > layer_cycles(layer, 4, 8, 8)

    def test_per_channel_overhead_about_20_percent(self):
        layer = self.spec.layers[14]
        pl = layer_cycles(layer, 8, 8, 8, method=QuantMethod.PL_ICN)
        pc = layer_cycles(layer, 8, 8, 8, method=QuantMethod.PC_ICN)
        assert 1.1 < pc / pl < 1.3

    def test_threshold_requant_cost_grows_with_bits(self):
        layer = self.spec.layers[14]
        c4 = layer_cycles(layer, 8, 8, 4, method=QuantMethod.PC_THRESHOLDS)
        c8 = layer_cycles(layer, 8, 8, 8, method=QuantMethod.PC_THRESHOLDS)
        assert c8 > c4

    def test_unknown_kind_rejected(self):
        layer = self.spec.layers[0]
        bad = layer.__class__(**{**layer.__dict__, "kind": "transformer"})
        with pytest.raises(ValueError):
            layer_cycles(bad, 8, 8, 8)


class TestNetworkCycles:
    def test_paper_anchor_fastest_config_about_10_fps(self):
        """Paper §6: 128_0.25 with homogeneous 8 bit runs at ~10 fps at 400 MHz."""
        spec = mobilenet_v1_spec(128, 0.25)
        policy = QuantPolicy.uniform(spec, method=QuantMethod.PL_ICN, bits=8)
        breakdown = network_cycles(spec, policy)
        fps = STM32H7.cycles_to_fps(breakdown.total_cycles)
        assert 6.0 < fps < 15.0

    def test_paper_anchor_most_accurate_about_20x_slower(self):
        """Paper §6: 224_0.75 PC+ICN is roughly 20x slower than 128_0.25."""
        fast_spec = mobilenet_v1_spec(128, 0.25)
        slow_spec = mobilenet_v1_spec(224, 0.75)
        fast = network_cycles(fast_spec, QuantPolicy.uniform(fast_spec, QuantMethod.PL_ICN, 8))
        slow = network_cycles(slow_spec, QuantPolicy.uniform(slow_spec, QuantMethod.PC_ICN, 8))
        ratio = slow.total_cycles / fast.total_cycles
        assert 15.0 < ratio < 35.0

    def test_pc_network_slower_than_pl(self):
        spec = mobilenet_v1_spec(192, 0.5)
        pl = network_cycles(spec, QuantPolicy.uniform(spec, QuantMethod.PL_ICN, 8))
        pc = network_cycles(spec, QuantPolicy.uniform(spec, QuantMethod.PC_ICN, 8))
        assert 1.1 < pc.total_cycles / pl.total_cycles < 1.3

    def test_latency_monotone_in_resolution(self):
        cycles = []
        for res in (128, 160, 192, 224):
            spec = mobilenet_v1_spec(res, 0.5)
            cycles.append(network_cycles(spec, QuantPolicy.uniform(spec, bits=8)).total_cycles)
        assert cycles == sorted(cycles)

    def test_breakdown_structure(self):
        spec = mobilenet_v1_spec(128, 0.25)
        breakdown = network_cycles(spec, QuantPolicy.uniform(spec, bits=8))
        assert isinstance(breakdown, LatencyBreakdown)
        assert len(breakdown.per_layer_cycles) == len(spec)
        assert breakdown.total_cycles == pytest.approx(sum(breakdown.per_layer_cycles))
        top = breakdown.top_layers(3)
        assert len(top) == 3 and top[0][1] >= top[1][1] >= top[2][1]

    def test_layer_count_mismatch_rejected(self):
        spec = mobilenet_v1_spec(128, 0.25)
        policy = QuantPolicy.uniform(spec, bits=8)
        policy.layers.pop()
        with pytest.raises(ValueError):
            network_cycles(spec, policy)

    def test_custom_cost_model(self):
        spec = mobilenet_v1_spec(128, 0.25)
        policy = QuantPolicy.uniform(spec, bits=8)
        slow_model = CMSISNNCostModel(
            cycles_per_mac={"conv": 10.0, "pw": 10.0, "dw": 10.0, "fc": 10.0}
        )
        assert (
            network_cycles(spec, policy, slow_model).total_cycles
            > network_cycles(spec, policy, DEFAULT_COST_MODEL).total_cycles
        )
