"""Deployment reporting: memory fit, latency and the end-to-end deploy()."""

import pytest

from repro.core.policy import QuantMethod, QuantPolicy
from repro.mcu.deploy import check_fit, deploy
from repro.mcu.device import MB, STM32H7, STM32L4
from repro.models.model_zoo import mobilenet_v1_spec


class TestCheckFit:
    def test_small_model_fits_stm32h7(self):
        spec = mobilenet_v1_spec(128, 0.25)
        policy = QuantPolicy.uniform(spec, bits=8)
        assert check_fit(spec, policy, STM32H7)

    def test_large_model_does_not_fit_at_8bit(self):
        spec = mobilenet_v1_spec(224, 1.0)
        policy = QuantPolicy.uniform(spec, bits=8)
        assert not check_fit(spec, policy, STM32H7)

    def test_large_model_does_not_fit_tiny_device(self):
        spec = mobilenet_v1_spec(224, 1.0)
        policy = QuantPolicy.uniform(spec, bits=2)
        assert not check_fit(spec, policy, STM32L4)


class TestDeploy:
    def test_deploy_runs_search_when_no_policy_given(self):
        report = deploy(mobilenet_v1_spec(224, 0.75), STM32H7)
        assert report.fits
        assert report.ro_bytes <= STM32H7.flash_bytes
        assert report.rw_peak_bytes <= STM32H7.ram_bytes
        assert not report.policy.is_uniform(8)

    def test_deploy_respects_supplied_policy(self):
        spec = mobilenet_v1_spec(128, 0.25)
        policy = QuantPolicy.uniform(spec, method=QuantMethod.PL_ICN, bits=8)
        report = deploy(spec, STM32H7, policy=policy)
        assert report.method is QuantMethod.PL_ICN
        assert report.policy is policy

    def test_latency_and_fps_consistent(self):
        report = deploy(mobilenet_v1_spec(128, 0.25), STM32H7)
        assert report.fps == pytest.approx(1000.0 / report.latency_ms, rel=1e-6)
        assert report.total_cycles > 0

    def test_headline_configuration(self):
        """The paper's headline deployment: an accurate MobileNetV1 on a
        2 MB / 512 kB device with per-channel ICN quantization."""
        report = deploy(mobilenet_v1_spec(224, 0.75), STM32H7, method=QuantMethod.PC_ICN)
        assert report.fits
        assert report.ro_bytes / MB <= 2.0

    def test_summary_text(self):
        report = deploy(mobilenet_v1_spec(128, 0.25), STM32H7)
        text = report.summary()
        assert "STM32H743" in text and "fps" in text and "MB" in text

    def test_infeasible_deployment_reported(self):
        report = deploy(mobilenet_v1_spec(224, 1.0), STM32L4, strict=False)
        assert not report.fits

    def test_table3_budget_override(self):
        device = STM32H7.with_budgets(flash_bytes=1 * MB)
        report = deploy(mobilenet_v1_spec(224, 0.5), device)
        assert report.fits
        assert report.ro_bytes <= 1 * MB
