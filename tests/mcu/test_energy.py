"""Energy model for duty-cycled smart-sensor deployments."""

import pytest

from repro.core.policy import QuantPolicy
from repro.mcu.device import STM32H7, STM32L4
from repro.mcu.energy import (
    EnergyReport,
    PowerProfile,
    STM32H7_POWER,
    STM32L4_POWER,
    duty_cycle_report,
    energy_per_inference_mj,
)
from repro.mcu.latency import network_cycles
from repro.models.model_zoo import mobilenet_v1_spec


class TestPowerProfile:
    def test_presets(self):
        assert STM32L4_POWER.active_mw < STM32H7_POWER.active_mw
        assert STM32L4_POWER.sleep_uw < STM32H7_POWER.sleep_uw

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            PowerProfile(active_mw=0.0)
        with pytest.raises(ValueError):
            PowerProfile(sleep_uw=-1.0)


class TestEnergyPerInference:
    def test_scales_with_cycles(self):
        e1 = energy_per_inference_mj(40e6)
        e2 = energy_per_inference_mj(80e6)
        assert e2 > e1

    def test_wakeup_overhead_included(self):
        no_overhead = PowerProfile(active_mw=60.0, sleep_uw=30.0, wakeup_overhead_ms=0.0)
        assert energy_per_inference_mj(40e6, power=no_overhead) < energy_per_inference_mj(40e6)

    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            energy_per_inference_mj(-1)

    def test_realistic_magnitude(self):
        """~40 Mcycles at 400 MHz and 60 mW is a handful of millijoules."""
        e = energy_per_inference_mj(40e6, STM32H7, STM32H7_POWER)
        assert 1.0 < e < 20.0


class TestDutyCycleReport:
    def test_report_fields(self):
        report = duty_cycle_report(40e6, inferences_per_hour=60)
        assert isinstance(report, EnergyReport)
        assert report.latency_ms == pytest.approx(100.0)
        assert report.average_power_mw > 0
        assert report.battery_life_days > 0
        assert "mJ" in report.summary()

    def test_rarer_inferences_extend_battery_life(self):
        frequent = duty_cycle_report(40e6, inferences_per_hour=3600)
        rare = duty_cycle_report(40e6, inferences_per_hour=6)
        assert rare.battery_life_days > frequent.battery_life_days

    def test_sleep_power_floor(self):
        """With extremely rare inferences the average power approaches the
        sleep power."""
        report = duty_cycle_report(40e6, inferences_per_hour=0.01)
        assert report.average_power_mw < 0.1

    def test_low_power_device_wins(self):
        spec = mobilenet_v1_spec(128, 0.25)
        cycles = network_cycles(spec, QuantPolicy.uniform(spec, bits=8)).total_cycles
        h7 = duty_cycle_report(cycles, 60, STM32H7, STM32H7_POWER)
        l4 = duty_cycle_report(cycles, 60, STM32L4, STM32L4_POWER)
        assert l4.average_power_mw < h7.average_power_mw

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            duty_cycle_report(1e6, inferences_per_hour=0)
        with pytest.raises(ValueError):
            duty_cycle_report(1e6, inferences_per_hour=1, battery_mwh=0)
